"""The simulation job daemon: asyncio server + worker pool + scheduler.

``repro serve --state-dir DIR`` runs one daemon per state directory.
It listens on a Unix socket (``DIR/daemon.sock``; optionally also TCP
via ``--tcp HOST:PORT``), speaks the JSON-lines protocol of
:mod:`repro.service.protocol`, and owns:

* a :class:`~repro.service.scheduler.Scheduler` (job table, priority
  queue, single-flight dedup, admission control),
* a :class:`~repro.service.pool.UnitExecutor` (supervised worker
  processes with the engine's timeout/retry/quarantine policy),
* the shared :class:`~repro.harness.parallel.ResultCache` under
  ``DIR/cache`` — the same content-addressed store CLI sweeps use, so
  daemon and CLI runs feed each other,
* a progress bridge: one ``multiprocessing`` queue drained by a
  thread, each event hopped onto the event loop with
  ``call_soon_threadsafe`` and routed to the owning execution's
  watchers (this is what makes ``repro watch`` live rather than
  post-hoc).

Failure domains are deliberately nested: a malformed frame kills one
*connection*; a crashed simulation kills one *attempt*; a failed unit
fails one *job*; only SIGTERM/SIGINT touch the daemon itself, and then
via graceful drain — stop admitting, give in-flight attempts a grace
period, persist still-open jobs to ``queue.json``, exit.  A restarted
daemon restores that queue and re-runs only what the cache does not
already hold.
"""

from __future__ import annotations

import asyncio
import os
import queue as _queue_mod
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.harness.parallel import ResultCache
from repro.service import protocol
from repro.service.scheduler import AdmissionError, Scheduler
from repro.service.pool import UnitExecutor

#: Socket filename inside the state directory.
SOCKET_NAME = "daemon.sock"


@dataclass
class ServiceConfig:
    """Everything one daemon instance needs to run."""

    state_dir: str
    socket_path: Optional[str] = None  # default: <state_dir>/daemon.sock
    tcp: Optional[Tuple[str, int]] = None
    slots: int = 2  # concurrent simulations
    max_jobs: int = 8  # open-job admission limit
    timeout: Optional[float] = None  # per-unit wall-clock kill
    retries: int = 0
    backoff: float = 0.25
    drain_grace: float = 10.0  # seconds in-flight work gets on SIGTERM
    salt: Optional[str] = None  # cache salt override (tests)

    def resolved_socket(self) -> Path:
        if self.socket_path is not None:
            return Path(self.socket_path)
        return Path(self.state_dir) / SOCKET_NAME


class Daemon:
    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.state_dir / "cache")
        self.executor = UnitExecutor(
            timeout=config.timeout,
            retries=config.retries,
            backoff=config.backoff,
        )
        self.progress_queue = self.executor.make_queue()
        self.executor.progress_queue = self.progress_queue
        self.scheduler = Scheduler(
            self.executor,
            self.cache,
            slots=config.slots,
            max_jobs=config.max_jobs,
            salt=config.salt,
            jobs_dir=self.state_dir / "jobs",
        )
        self.started = time.time()
        self._stop = asyncio.Event()
        self._progress_thread: Optional[threading.Thread] = None
        self._log_path = self.state_dir / "daemon.log"
        self._server = None
        self._tcp_server = None

    # ---------------------------------------------------------------- log

    def log(self, message: str) -> None:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S")
        with self._log_path.open("a") as handle:
            handle.write(f"{stamp} {message}\n")

    # ------------------------------------------------------ progress pump

    def _drain_progress(self, loop: asyncio.AbstractEventLoop) -> None:
        """Thread target: hop worker progress events onto the loop."""
        while True:
            try:
                event = self.progress_queue.get(timeout=0.2)
            except (_queue_mod.Empty, OSError):
                if self._stop.is_set():
                    return
                continue
            if event is None:  # shutdown sentinel
                return
            try:
                loop.call_soon_threadsafe(self.scheduler.on_progress, event)
            except RuntimeError:  # loop already closed
                return

    # ------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # line exceeded the stream limit
                    writer.write(
                        protocol.encode_frame(
                            protocol.error_frame(
                                "bad_frame", "frame exceeds size limit"
                            )
                        )
                    )
                    await writer.drain()
                    return
                if not line:
                    return  # client closed
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode_frame(line)
                    rtype = protocol.check_request(frame)
                except protocol.ProtocolError as error:
                    # Poison only this connection: report and hang up.
                    writer.write(protocol.encode_frame(error.frame()))
                    await writer.drain()
                    return
                try:
                    done = await self._dispatch(rtype, frame, writer)
                except (ConnectionResetError, BrokenPipeError):
                    raise
                except Exception as error:  # noqa: BLE001 — daemon survives
                    self.log(
                        f"internal error handling {rtype}: "
                        f"{type(error).__name__}: {error}"
                    )
                    writer.write(
                        protocol.encode_frame(
                            protocol.error_frame(
                                "internal",
                                f"{type(error).__name__}: {error}",
                            )
                        )
                    )
                    await writer.drain()
                    return
                if done:
                    return
        except (ConnectionResetError, BrokenPipeError, OSError):
            # Mid-stream disconnect: this connection only; jobs and all
            # other clients are unaffected.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, rtype: str, frame: dict, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one request; returns True when the connection is done."""

        def send(payload: dict) -> None:
            writer.write(protocol.encode_frame(payload))

        if rtype == "ping":
            send(
                {
                    "type": "pong",
                    "v": protocol.PROTOCOL_VERSION,
                    "pid": os.getpid(),
                    "uptime": round(time.time() - self.started, 3),
                    "stats": self.scheduler.stats(),
                }
            )
            await writer.drain()
            return False
        if rtype == "submit":
            kind = frame.get("kind")
            params = frame.get("params") or {}
            if not isinstance(kind, str) or not isinstance(params, dict):
                send(
                    protocol.error_frame(
                        "bad_params", "submit needs kind:str and params:dict"
                    )
                )
                await writer.drain()
                return False
            try:
                job = self.scheduler.submit(
                    kind, params, priority=frame.get("priority", "normal")
                )
            except AdmissionError as error:
                self.log(f"reject {kind}: {error.code}: {error}")
                send(protocol.error_frame(error.code, str(error)))
                await writer.drain()
                return False
            self.log(
                f"submit {job.id} kind={kind} units={len(job.units)} "
                f"priority={job.priority} dedup={job.dedup_hits}"
            )
            send({"type": "submitted", "job": job.to_wire()})
            await writer.drain()
            return False
        if rtype == "status":
            job = self.scheduler.jobs.get(frame.get("job"))
            if job is None:
                send(
                    protocol.error_frame(
                        "unknown_job", f"no job {frame.get('job')!r}"
                    )
                )
            else:
                send({"type": "status", "job": job.to_wire(include_result=True)})
            await writer.drain()
            return False
        if rtype == "jobs":
            listing = [
                job.to_wire()
                for job in sorted(
                    self.scheduler.jobs.values(), key=lambda j: j.seq
                )
            ]
            send({"type": "jobs", "jobs": listing})
            await writer.drain()
            return False
        if rtype == "watch":
            return await self._watch(frame, writer)
        if rtype == "shutdown":
            send({"type": "ok", "draining": True})
            await writer.drain()
            self.log("shutdown requested over protocol")
            self.request_stop()
            return True
        return True  # unreachable: check_request vetted rtype

    async def _watch(self, frame: dict, writer: asyncio.StreamWriter) -> bool:
        job = self.scheduler.jobs.get(frame.get("job"))
        if job is None:
            writer.write(
                protocol.encode_frame(
                    protocol.error_frame(
                        "unknown_job", f"no job {frame.get('job')!r}"
                    )
                )
            )
            await writer.drain()
            return False
        live: asyncio.Queue = asyncio.Queue()
        job.watchers.add(live)
        last_seq = 0
        try:
            # Replay first (subscribing *before* the snapshot + seq dedup
            # makes the handoff gapless), then stream until done.
            for event in list(job.events):
                writer.write(protocol.encode_frame(event))
                last_seq = event["seq"]
            await writer.drain()
            while not (job.done_event.is_set() and live.empty()):
                try:
                    event = await asyncio.wait_for(live.get(), timeout=0.2)
                except asyncio.TimeoutError:
                    continue
                if event["seq"] <= last_seq:
                    continue
                last_seq = event["seq"]
                writer.write(protocol.encode_frame(event))
                await writer.drain()
        finally:
            job.watchers.discard(live)
        writer.write(
            protocol.encode_frame(
                {"type": "done", "job": job.id, "state": job.state}
            )
        )
        await writer.drain()
        return False  # connection may issue further requests

    # -------------------------------------------------------- run / stop

    def request_stop(self) -> None:
        """Begin a graceful drain.  Must be called on the event loop;
        foreign threads go through :meth:`stop_threadsafe`."""
        self._stop.set()

    def stop_threadsafe(self) -> None:
        loop = getattr(self, "loop", None)
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.request_stop)

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        self.loop = loop
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (ValueError, NotImplementedError, RuntimeError):
                pass  # not the main thread (tests) or unsupported

        socket_path = self.config.resolved_socket()
        socket_path.parent.mkdir(parents=True, exist_ok=True)
        if socket_path.exists():
            socket_path.unlink()  # stale socket from a killed daemon
        limit = protocol.MAX_FRAME_BYTES + 1024
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(socket_path), limit=limit
        )
        if self.config.tcp is not None:
            host, port = self.config.tcp
            self._tcp_server = await asyncio.start_server(
                self._handle_connection, host=host, port=port, limit=limit
            )

        self._progress_thread = threading.Thread(
            target=self._drain_progress, args=(loop,), daemon=True
        )
        self._progress_thread.start()

        restored = self.scheduler.restore(self.state_dir)
        if restored:
            self.log(f"restored {restored} persisted job(s) from queue.json")
        self.log(
            f"listening on {socket_path} "
            f"(slots={self.config.slots}, max_jobs={self.config.max_jobs})"
        )

        try:
            await self._stop.wait()
        finally:
            await self._shutdown(socket_path)

    async def _shutdown(self, socket_path: Path) -> None:
        self.log(f"draining (grace={self.config.drain_grace}s)")
        for server in (self._server, self._tcp_server):
            if server is not None:
                server.close()
        await self.scheduler.drain(self.config.drain_grace)
        persisted = self.scheduler.persist(self.state_dir)
        self.log(f"drained; persisted {persisted} open job(s)")
        try:
            self.progress_queue.put(None)  # unblock the pump thread
        except Exception:  # noqa: BLE001
            pass
        if self._progress_thread is not None:
            self._progress_thread.join(timeout=2.0)
        for server in (self._server, self._tcp_server):
            if server is not None:
                try:
                    await server.wait_closed()
                except Exception:  # noqa: BLE001
                    pass
        try:
            socket_path.unlink()
        except OSError:
            pass


def serve(config: ServiceConfig) -> None:
    """Blocking entry point: run one daemon until it drains."""
    daemon = Daemon(config)
    asyncio.run(daemon.run())
