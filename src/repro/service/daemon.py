"""The simulation job daemon: asyncio server + worker pool + scheduler.

``repro serve --state-dir DIR`` runs one daemon per state directory.
It listens on a Unix socket (``DIR/daemon.sock``; optionally also TCP
via ``--tcp HOST:PORT``), speaks the JSON-lines protocol of
:mod:`repro.service.protocol`, and owns:

* a :class:`~repro.service.scheduler.Scheduler` (job table, priority
  queue, single-flight dedup, admission control),
* a :class:`~repro.service.pool.UnitExecutor` (supervised worker
  processes with the engine's timeout/retry/quarantine policy),
* the shared :class:`~repro.harness.parallel.ResultCache` under
  ``DIR/cache`` — the same content-addressed store CLI sweeps use, so
  daemon and CLI runs feed each other,
* a progress bridge: one ``multiprocessing`` queue drained by a
  thread, each event hopped onto the event loop with
  ``call_soon_threadsafe`` and routed to the owning execution's
  watchers (this is what makes ``repro watch`` live rather than
  post-hoc).

Failure domains are deliberately nested: a malformed frame kills one
*connection*; a crashed simulation kills one *attempt*; a failed unit
fails one *job*; only SIGTERM/SIGINT touch the daemon itself, and then
via graceful drain — stop admitting, give in-flight attempts a grace
period, persist still-open jobs to ``queue.json``, exit.  A restarted
daemon restores that queue and re-runs only what the cache does not
already hold.
"""

from __future__ import annotations

import asyncio
import json
import os
import queue as _queue_mod
import signal
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.harness.parallel import ResultCache
from repro.service import protocol
from repro.service.fabric import FabricDispatcher
from repro.service.scheduler import AdmissionError, Scheduler
from repro.service.pool import UnitExecutor

#: Socket filename inside the state directory.
SOCKET_NAME = "daemon.sock"


class StartupError(Exception):
    """The daemon cannot start (bind failure, endpoint owned by a live
    daemon).  :func:`serve` turns it into a structured stderr line and
    exit code 1 instead of a traceback."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


@dataclass
class ServiceConfig:
    """Everything one daemon instance needs to run."""

    state_dir: str
    socket_path: Optional[str] = None  # default: <state_dir>/daemon.sock
    tcp: Optional[Tuple[str, int]] = None
    slots: int = 2  # concurrent simulations
    max_jobs: int = 8  # open-job admission limit
    timeout: Optional[float] = None  # per-unit wall-clock kill
    retries: int = 0
    backoff: float = 0.25
    drain_grace: float = 10.0  # seconds in-flight work gets on SIGTERM
    salt: Optional[str] = None  # cache salt override (tests)
    coordinator: bool = False  # execute on registered workers, not local
    heartbeat: float = 1.0  # worker heartbeat interval (coordinator)
    miss_factor: float = 3.0  # silent intervals before a worker is dead
    unit_retries: int = 2  # reassignments after a worker loss, per unit

    def resolved_socket(self) -> Path:
        if self.socket_path is not None:
            return Path(self.socket_path)
        return Path(self.state_dir) / SOCKET_NAME


class Daemon:
    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._log_path = self.state_dir / "daemon.log"
        self.cache = ResultCache(self.state_dir / "cache")
        self.cache.heal(log=self.log)  # clear torn entries from a crash
        self.fabric: Optional[FabricDispatcher] = None
        if config.coordinator:
            self.fabric = FabricDispatcher(
                heartbeat=config.heartbeat,
                miss_factor=config.miss_factor,
                unit_retries=config.unit_retries,
                timeout=config.timeout,
                retries=config.retries,
                salt=config.salt,
                log=self.log,
                events_path=self.state_dir / "fabric-events.jsonl",
            )
            self.executor = self.fabric
            self.progress_queue = None
        else:
            self.executor = UnitExecutor(
                timeout=config.timeout,
                retries=config.retries,
                backoff=config.backoff,
            )
            self.progress_queue = self.executor.make_queue()
            self.executor.progress_queue = self.progress_queue
        self.scheduler = Scheduler(
            self.executor,
            self.cache,
            slots=config.slots,
            max_jobs=config.max_jobs,
            salt=config.salt,
            jobs_dir=self.state_dir / "jobs",
        )
        if self.fabric is not None:
            # Capacity is whatever the registered workers bring; with no
            # workers yet, units queue instead of dispatching.
            self.scheduler.slots = 0
            self.fabric.on_capacity_change = self._on_capacity
            self.fabric.on_progress = self.scheduler.on_progress
        self.started = time.time()
        self._stop = asyncio.Event()
        self._drained = asyncio.Event()
        self._progress_thread: Optional[threading.Thread] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._server = None
        self._tcp_server = None

    def _on_capacity(self, capacity: int) -> None:
        """Fabric capacity changed: retune the scheduler's slot count."""
        self.scheduler.slots = capacity
        self.log(f"fabric capacity now {capacity} slot(s)")
        self.scheduler._pump()

    # ---------------------------------------------------------------- log

    def log(self, message: str) -> None:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S")
        with self._log_path.open("a") as handle:
            handle.write(f"{stamp} {message}\n")

    # ------------------------------------------------------ progress pump

    def _drain_progress(self, loop: asyncio.AbstractEventLoop) -> None:
        """Thread target: hop worker progress events onto the loop."""
        while True:
            try:
                event = self.progress_queue.get(timeout=0.2)
            except (_queue_mod.Empty, OSError):
                if self._stop.is_set():
                    return
                continue
            if event is None:  # shutdown sentinel
                return
            try:
                loop.call_soon_threadsafe(self.scheduler.on_progress, event)
            except RuntimeError:  # loop already closed
                return

    # ------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # line exceeded the stream limit
                    writer.write(
                        protocol.encode_frame(
                            protocol.error_frame(
                                "bad_frame", "frame exceeds size limit"
                            )
                        )
                    )
                    await writer.drain()
                    return
                if not line:
                    return  # client closed
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode_frame(line)
                    rtype = protocol.check_request(frame)
                except protocol.ProtocolError as error:
                    # Poison only this connection: report and hang up.
                    writer.write(protocol.encode_frame(error.frame()))
                    await writer.drain()
                    return
                if rtype in protocol.WORKER_REQUEST_TYPES:
                    if self.fabric is None:
                        writer.write(
                            protocol.encode_frame(
                                protocol.error_frame(
                                    "not_coordinator",
                                    "this daemon executes locally; start "
                                    "it with --coordinator to accept "
                                    "workers",
                                )
                            )
                        )
                        await writer.drain()
                        return
                    if rtype != "w.register":
                        writer.write(
                            protocol.encode_frame(
                                protocol.error_frame(
                                    "bad_frame",
                                    f"{rtype} before w.register",
                                )
                            )
                        )
                        await writer.drain()
                        return
                    # The connection is a worker's for its lifetime.
                    await self._serve_worker(frame, reader, writer)
                    return
                try:
                    done = await self._dispatch(rtype, frame, writer)
                except (ConnectionResetError, BrokenPipeError):
                    raise
                except Exception as error:  # noqa: BLE001 — daemon survives
                    self.log(
                        f"internal error handling {rtype}: "
                        f"{type(error).__name__}: {error}"
                    )
                    writer.write(
                        protocol.encode_frame(
                            protocol.error_frame(
                                "internal",
                                f"{type(error).__name__}: {error}",
                            )
                        )
                    )
                    await writer.drain()
                    return
                if done:
                    return
        except (ConnectionResetError, BrokenPipeError, OSError):
            # Mid-stream disconnect: this connection only; jobs and all
            # other clients are unaffected.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, rtype: str, frame: dict, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one request; returns True when the connection is done."""

        def send(payload: dict) -> None:
            writer.write(protocol.encode_frame(payload))

        if rtype == "ping":
            pong = {
                "type": "pong",
                "v": protocol.PROTOCOL_VERSION,
                "pid": os.getpid(),
                "uptime": round(time.time() - self.started, 3),
                "stats": self.scheduler.stats(),
            }
            if self.fabric is not None:
                pong["fabric"] = self.fabric.stats()
            send(pong)
            await writer.drain()
            return False
        if rtype == "workers":
            listing = {
                "type": "workers",
                "coordinator": self.fabric is not None,
                "workers": [],
                "fabric": None,
            }
            if self.fabric is not None:
                listing["workers"] = [
                    worker.to_wire()
                    for worker in sorted(
                        self.fabric.workers.values(),
                        key=lambda w: w.name,
                    )
                ]
                listing["fabric"] = self.fabric.stats()
            send(listing)
            await writer.drain()
            return False
        if rtype == "submit":
            kind = frame.get("kind")
            params = frame.get("params") or {}
            if not isinstance(kind, str) or not isinstance(params, dict):
                send(
                    protocol.error_frame(
                        "bad_params", "submit needs kind:str and params:dict"
                    )
                )
                await writer.drain()
                return False
            try:
                job = self.scheduler.submit(
                    kind, params, priority=frame.get("priority", "normal")
                )
            except AdmissionError as error:
                self.log(f"reject {kind}: {error.code}: {error}")
                send(protocol.error_frame(error.code, str(error)))
                await writer.drain()
                return False
            self.log(
                f"submit {job.id} kind={kind} units={len(job.units)} "
                f"priority={job.priority} dedup={job.dedup_hits}"
            )
            send({"type": "submitted", "job": job.to_wire()})
            await writer.drain()
            return False
        if rtype == "status":
            job = self.scheduler.jobs.get(frame.get("job"))
            if job is None:
                send(
                    protocol.error_frame(
                        "unknown_job", f"no job {frame.get('job')!r}"
                    )
                )
            else:
                send({"type": "status", "job": job.to_wire(include_result=True)})
            await writer.drain()
            return False
        if rtype == "jobs":
            listing = [
                job.to_wire()
                for job in sorted(
                    self.scheduler.jobs.values(), key=lambda j: j.seq
                )
            ]
            send({"type": "jobs", "jobs": listing})
            await writer.drain()
            return False
        if rtype == "watch":
            return await self._watch(frame, writer)
        if rtype == "shutdown":
            send({"type": "ok", "draining": True})
            await writer.drain()
            self.log("shutdown requested over protocol")
            self.request_stop()
            return True
        return True  # unreachable: check_request vetted rtype

    async def _watch(self, frame: dict, writer: asyncio.StreamWriter) -> bool:
        job = self.scheduler.jobs.get(frame.get("job"))
        if job is None:
            writer.write(
                protocol.encode_frame(
                    protocol.error_frame(
                        "unknown_job", f"no job {frame.get('job')!r}"
                    )
                )
            )
            await writer.drain()
            return False
        live: asyncio.Queue = asyncio.Queue()
        job.watchers.add(live)
        last_seq = 0
        try:
            # Replay first (subscribing *before* the snapshot + seq dedup
            # makes the handoff gapless), then stream until done.
            for event in list(job.events):
                writer.write(protocol.encode_frame(event))
                last_seq = event["seq"]
            await writer.drain()
            while not (job.done_event.is_set() and live.empty()):
                if self._drained.is_set() and live.empty() and job.open:
                    # Drain interrupted this job.  It is persisted and
                    # will resume under the same id after restart; tell
                    # the subscriber so instead of hanging up on it.
                    writer.write(
                        protocol.encode_frame(
                            {
                                "type": "draining",
                                "job": job.id,
                                "state": job.state,
                                "persisted": True,
                            }
                        )
                    )
                    await writer.drain()
                    return True
                try:
                    event = await asyncio.wait_for(live.get(), timeout=0.2)
                except asyncio.TimeoutError:
                    continue
                if event["seq"] <= last_seq:
                    continue
                last_seq = event["seq"]
                writer.write(protocol.encode_frame(event))
                await writer.drain()
        finally:
            job.watchers.discard(live)
        writer.write(
            protocol.encode_frame(
                {"type": "done", "job": job.id, "state": job.state}
            )
        )
        await writer.drain()
        return False  # connection may issue further requests

    # ------------------------------------------------------------ workers

    async def _serve_worker(
        self,
        frame: dict,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Own one worker connection from ``w.register`` to EOF."""
        handle = self.fabric.register(frame, writer)
        writer.write(
            protocol.encode_frame(
                {
                    "type": "w.registered",
                    "worker": handle.name,
                    "heartbeat": self.fabric.heartbeat,
                }
            )
        )
        await writer.drain()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                try:
                    wframe = protocol.decode_frame(line)
                    wtype = protocol.check_request(wframe)
                except protocol.ProtocolError as error:
                    self.log(
                        f"fabric: protocol error from {handle.name}: "
                        f"{error}"
                    )
                    return
                # Any frame is proof of life, not just heartbeats.
                self.fabric.heartbeat_from(handle.name)
                if wtype == "w.heartbeat":
                    continue
                if wtype == "w.result":
                    self.fabric.redeem(
                        wframe.get("lease"), wframe.get("result") or {}
                    )
                elif wtype == "w.progress":
                    self.fabric.progress_from(wframe.get("event") or {})
                elif wtype == "w.bye":
                    self.log(f"fabric: worker {handle.name} said bye")
                    return
                else:  # a second w.register on a live connection
                    self.log(
                        f"fabric: unexpected {wtype} from {handle.name}"
                    )
                    return
        finally:
            # Only unregister if this connection still owns the name —
            # a rejoined worker may have replaced the registration.
            if self.fabric.workers.get(handle.name) is handle:
                self.fabric.worker_lost(
                    handle.name, reason="connection closed"
                )

    # -------------------------------------------------------- run / stop

    def request_stop(self) -> None:
        """Begin a graceful drain.  Must be called on the event loop;
        foreign threads go through :meth:`stop_threadsafe`."""
        self._stop.set()

    def stop_threadsafe(self) -> None:
        loop = getattr(self, "loop", None)
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.request_stop)

    @staticmethod
    async def _socket_owner_alive(socket_path: Path) -> bool:
        """True when an existing socket file has a live daemon behind
        it.  A connect that is refused (or the file vanishing) means the
        owner is dead and the socket is safe to reclaim."""
        try:
            _reader, writer = await asyncio.open_unix_connection(
                str(socket_path)
            )
        except (ConnectionError, FileNotFoundError, OSError):
            return False
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        return True

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        self.loop = loop
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (ValueError, NotImplementedError, RuntimeError):
                pass  # not the main thread (tests) or unsupported

        socket_path = self.config.resolved_socket()
        socket_path.parent.mkdir(parents=True, exist_ok=True)
        if socket_path.exists():
            if await self._socket_owner_alive(socket_path):
                raise StartupError(
                    "socket_in_use",
                    f"{socket_path} is owned by a live daemon; "
                    "stop it first or use another --state-dir",
                )
            # Stale socket from a killed daemon: reclaim it.
            self.log(f"reclaiming stale socket {socket_path}")
            socket_path.unlink()
        limit = protocol.MAX_FRAME_BYTES + 1024
        try:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=str(socket_path), limit=limit
            )
        except OSError as error:
            raise StartupError(
                "bind_failed", f"cannot bind {socket_path}: {error}"
            )
        if self.config.tcp is not None:
            host, port = self.config.tcp
            try:
                self._tcp_server = await asyncio.start_server(
                    self._handle_connection, host=host, port=port,
                    limit=limit,
                )
            except OSError as error:
                self._server.close()
                try:
                    socket_path.unlink()
                except OSError:
                    pass
                raise StartupError(
                    "bind_failed", f"cannot bind {host}:{port}: {error}"
                )

        if self.progress_queue is not None:
            self._progress_thread = threading.Thread(
                target=self._drain_progress, args=(loop,), daemon=True
            )
            self._progress_thread.start()
        if self.fabric is not None:
            self._monitor_task = asyncio.ensure_future(
                self.fabric.monitor()
            )

        restored = self.scheduler.restore(self.state_dir)
        if restored:
            self.log(f"restored {restored} persisted job(s) from queue.json")
        mode = "coordinator" if self.fabric is not None else "local"
        self.log(
            f"listening on {socket_path} ({mode} mode, "
            f"slots={self.config.slots}, max_jobs={self.config.max_jobs})"
        )

        try:
            await self._stop.wait()
        finally:
            await self._shutdown(socket_path)

    async def _shutdown(self, socket_path: Path) -> None:
        self.log(f"draining (grace={self.config.drain_grace}s)")
        for server in (self._server, self._tcp_server):
            if server is not None:
                server.close()
        await self.scheduler.drain(self.config.drain_grace)
        persisted = self.scheduler.persist(self.state_dir)
        self.log(f"drained; persisted {persisted} open job(s)")
        # Let in-flight watch subscribers observe the drain: they poll
        # every 0.2s and send a terminal ``draining`` frame for jobs the
        # drain left open, instead of seeing a bare hangup.
        self._drained.set()
        await asyncio.sleep(0.5)
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        if self.fabric is not None:
            # Hang up on every worker so their connection handlers see
            # EOF and finish before the loop closes (workers redial and
            # re-register if they outlive us).
            for name in list(self.fabric.workers):
                self.fabric.worker_lost(name, reason="coordinator shutdown")
            await asyncio.sleep(0)
        if self.progress_queue is not None:
            try:
                self.progress_queue.put(None)  # unblock the pump thread
            except Exception:  # noqa: BLE001
                pass
        if self._progress_thread is not None:
            self._progress_thread.join(timeout=2.0)
        for server in (self._server, self._tcp_server):
            if server is not None:
                try:
                    await server.wait_closed()
                except Exception:  # noqa: BLE001
                    pass
        try:
            socket_path.unlink()
        except OSError:
            pass


def serve(config: ServiceConfig) -> None:
    """Blocking entry point: run one daemon until it drains.

    A startup failure (endpoint already owned, bind error) prints one
    structured JSON line to stderr and exits 1 — scripts supervising
    daemons branch on ``error`` rather than parsing a traceback.
    """
    daemon = Daemon(config)
    try:
        asyncio.run(daemon.run())
    except StartupError as error:
        print(
            json.dumps(
                {"error": error.code, "message": str(error)},
                sort_keys=True,
            ),
            file=sys.stderr,
        )
        raise SystemExit(1)
