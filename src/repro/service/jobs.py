"""Job model and job kinds of the simulation service.

A **job** is one client-visible request — "regenerate these
experiments", "run this seed sweep" — that the scheduler decomposes
into the parallel engine's :class:`~repro.harness.parallel.WorkUnit`
grid.  Decomposition happens *at admission* so bad parameters are a
structured ``bad_params`` rejection, never a mid-run surprise, and so
the scheduler can dedup per unit key before anything executes.

Job kinds:

``run_all``
    Parameters ``{"scale", "seed", "names", "outdir"}``.  Finalises by
    writing the same artifact directory + ``manifest.json`` a direct
    :func:`repro.experiments.run_all.run_all` produces (via the shared
    :func:`~repro.experiments.run_all.write_outputs`), which is what
    makes service results provably ``strip_volatile``-identical to CLI
    results.  Failed units degrade the manifest instead of failing the
    job, mirroring ``run_all`` semantics.

``sweep``
    Parameters ``{"benchmarks", "specs", "seeds", "scale", "live",
    "sample_interval"}``.  Cells default to ``live=True`` — each
    simulation streams interval-sampler snapshots to ``repro watch``
    while it runs.  Any failed cell fails the job with the structured
    :class:`~repro.harness.sweeps.SweepError` (partial sweep statistics
    would be silently wrong).

The :class:`Job` object also carries the daemon-side bookkeeping: per
unit states, a bounded event log replayed to late watchers, and the
fields persisted across a drain/restart cycle (kind, params, priority,
submission order — everything needed to resubmit; completed units are
recovered from the result cache, not from job state).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.harness.parallel import UnitResult, WorkUnit

#: Priority classes in scheduling order; lower rank runs first.
PRIORITIES = {"high": 0, "normal": 1, "low": 2}

#: Job kinds the service accepts.
JOB_KINDS = ("run_all", "sweep")

#: How many events a job retains for replay to late watchers.
EVENT_LOG_CAPACITY = 2048


class JobParamsError(ValueError):
    """Invalid job kind/parameters — an admission-time rejection."""


def _require(params: dict, allowed: Dict[str, type]) -> None:
    for key, value in params.items():
        if key not in allowed:
            raise JobParamsError(
                f"unknown parameter {key!r}; known: {', '.join(allowed)}"
            )
        if value is not None and not isinstance(value, allowed[key]):
            raise JobParamsError(
                f"parameter {key!r} must be {allowed[key].__name__}, "
                f"got {type(value).__name__}"
            )


def build_units(kind: str, params: dict) -> List[WorkUnit]:
    """Decompose one job request into work units (validates params)."""
    if kind == "run_all":
        _require(
            params,
            {
                "scale": float,
                "seed": int,
                "names": list,
                "outdir": str,
            },
        )
        from repro.experiments.run_all import experiment_units

        try:
            return experiment_units(
                float(params.get("scale", 0.5)),
                int(params.get("seed", 1234)),
                names=params.get("names"),
            )
        except ValueError as error:
            raise JobParamsError(str(error))
    if kind == "sweep":
        _require(
            params,
            {
                "benchmarks": list,
                "specs": list,
                "seeds": list,
                "scale": float,
                "live": bool,
                "sample_interval": int,
            },
        )
        profiles, specs, seeds = _sweep_grid(params)
        from repro.harness.sweeps import sweep_units

        return sweep_units(
            profiles,
            specs,
            seeds,
            float(params.get("scale", 0.1)),
            live=params.get("live", True),
            sample_interval=params.get("sample_interval"),
        )
    raise JobParamsError(
        f"unknown job kind {kind!r}; known: {', '.join(JOB_KINDS)}"
    )


def _sweep_grid(params: dict):
    """Resolve a sweep job's (profiles, specs, seeds) from parameters."""
    from repro.harness.configs import figure7_specs
    from repro.workloads.spec import ALL_PROFILES, profile_by_name

    names = params.get("benchmarks")
    try:
        profiles = (
            [profile_by_name(name) for name in names]
            if names
            else list(ALL_PROFILES)
        )
    except (KeyError, ValueError) as error:
        raise JobParamsError(f"unknown benchmark: {error}")
    all_specs = {spec.name: spec for spec in figure7_specs()}
    spec_names = params.get("specs")
    if spec_names:
        unknown = [name for name in spec_names if name not in all_specs]
        if unknown:
            raise JobParamsError(
                f"unknown spec(s): {', '.join(unknown)}; "
                f"known: {', '.join(all_specs)}"
            )
        specs = [all_specs[name] for name in spec_names]
    else:
        specs = list(all_specs.values())
    seeds = params.get("seeds") or [1, 2, 3, 4, 5]
    if len(set(seeds)) != len(seeds):
        raise JobParamsError("seeds must be unique")
    return profiles, specs, seeds


def finalize_job(
    kind: str, params: dict, units: List[WorkUnit], results: Dict[str, UnitResult],
    outdir: Optional[str],
) -> dict:
    """Fold a completed job's unit results into its final payload.

    Runs in a worker thread (it writes artifacts).  Raises
    ``SweepError`` for a sweep with failed cells; ``run_all`` degrades
    into its manifest instead, exactly like the direct CLI path.
    """
    if kind == "run_all":
        from repro.experiments.run_all import write_outputs

        manifest = write_outputs(
            outdir,
            units,
            results,
            scale=float(params.get("scale", 0.5)),
            seed=int(params.get("seed", 1234)),
            jobs=0,
        )
        return {"outdir": str(outdir), "manifest": manifest}
    if kind == "sweep":
        from repro.harness.sweeps import (
            aggregate_overheads,
            raise_on_failed_cells,
        )

        raise_on_failed_cells(results)
        profiles, specs, seeds = _sweep_grid(params)
        values = {uid: result.value for uid, result in results.items()}
        stats = aggregate_overheads(profiles, specs, seeds, values)
        return {
            "specs": {
                name: {
                    "mean": result.mean,
                    "stdev": result.stdev,
                    "spread": result.spread,
                    "samples": result.samples,
                }
                for name, result in stats.items()
            },
            "seeds": list(seeds),
        }
    raise JobParamsError(f"unknown job kind {kind!r}")


@dataclass
class Job:
    """One admitted request and its daemon-side bookkeeping."""

    id: str
    kind: str
    params: dict
    priority: str
    seq: int  # admission order; FIFO tiebreak within a priority class
    units: List[WorkUnit]
    outdir: Optional[str] = None
    state: str = "queued"  # queued | running | done | failed
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    results: Dict[str, UnitResult] = field(default_factory=dict)
    unit_state: Dict[str, str] = field(default_factory=dict)
    dedup_hits: int = 0  # units attached to another job's execution
    executed: int = 0  # executions this job itself dispatched (owner)
    error: Optional[dict] = None
    result: Optional[dict] = None
    events: deque = field(
        default_factory=lambda: deque(maxlen=EVENT_LOG_CAPACITY)
    )
    event_seq: int = 0
    watchers: set = field(default_factory=set)  # asyncio.Queue per watcher
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def open(self) -> bool:
        return self.state in ("queued", "running")

    @property
    def failures(self) -> int:
        return sum(1 for r in self.results.values() if not r.ok)

    def record(self, uid: str, result: UnitResult, state: str) -> None:
        self.results[uid] = result
        self.unit_state[uid] = state

    def unit_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for unit in self.units:
            state = self.unit_state.get(unit.uid, "queued")
            counts[state] = counts.get(state, 0) + 1
        return counts

    def to_wire(self, include_result: bool = False) -> dict:
        wire = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "params": self.params,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "units": {"total": len(self.units), **self.unit_counts()},
            "dedup_hits": self.dedup_hits,
            "executed": self.executed,
            "failures": self.failures,
            "outdir": str(self.outdir) if self.outdir else None,
        }
        if self.error is not None:
            wire["error"] = self.error
        if include_result and self.result is not None:
            wire["result"] = self.result
        return wire

    def to_disk(self) -> dict:
        """The persisted form: everything needed to resubmit on restart."""
        return {
            "id": self.id,
            "kind": self.kind,
            "params": self.params,
            "priority": self.priority,
            "seq": self.seq,
        }
