"""Binary encoding/decoding for the micro-op ISA.

The paper extends the ISA with two instructions and implements them by
appropriating the encodings of x86's ``xsave``/``xrstor`` (which gem5
leaves unimplemented).  This module gives the reproduction's micro-op
ISA a concrete 16-byte fixed-width binary format so traces can be
serialised to disk, diffed, and replayed — the moral equivalent of a
"legacy binary" for the simulator.

Layout (little-endian):

=======  ====  ==========================================
offset   size  field
=======  ====  ==========================================
0        1     opcode
1        1     flags (bit0: taken, bit1: taken-valid)
2        1     access size (memory ops)
3        1     dependency count (up to 2 encoded)
4        2x2   dependency distances (u16 each)
8        4     pc (u32, offset from code base)
12       4     address low bits are insufficient for a
               64-bit space, so the address is stored as
               a u32 *page index* plus u12 offset packed
               into the pc word's upper space — instead we
               keep it simple: address as u64 replaces the
               pc+address pair for memory ops (pc is then
               recovered as 0).
=======  ====  ==========================================

Simplification: two record variants share the 16-byte slot — compute/
control ops store the pc; memory ops store the 64-bit address (their
pc is rarely needed for replay and decodes as 0).  A header carries
the magic and version.
"""

from __future__ import annotations

import struct
from typing import Iterable, List

from repro.cpu.isa import MicroOp, OpType

MAGIC = b"REST"
VERSION = 1

#: opcode assignments; arm/disarm get the 0xAE pair as a nod to the
#: paper's appropriation of xsave/xrstor (0F AE /4, /5).
_OPCODES = {
    OpType.ALU: 0x01,
    OpType.MUL: 0x02,
    OpType.DIV: 0x03,
    OpType.FP: 0x04,
    OpType.LOAD: 0x10,
    OpType.STORE: 0x11,
    OpType.BRANCH: 0x20,
    OpType.CALL: 0x21,
    OpType.RET: 0x22,
    OpType.NOP: 0x00,
    OpType.ARM: 0xAE,
    OpType.DISARM: 0xAF,
}
_BY_OPCODE = {code: op for op, code in _OPCODES.items()}

_RECORD = struct.Struct("<BBBBHHQ")
RECORD_SIZE = _RECORD.size  # 16 bytes
_HEADER = struct.Struct("<4sHHQ")


class EncodingError(Exception):
    """Malformed trace bytes or unencodable micro-op."""


def encode_uop(uop: MicroOp) -> bytes:
    """Encode one micro-op into its 16-byte record."""
    try:
        opcode = _OPCODES[uop.op]
    except KeyError:
        raise EncodingError(f"unencodable op {uop.op!r}") from None
    deps = tuple(uop.deps)[:2]
    if any(d <= 0 or d > 0xFFFF for d in deps):
        raise EncodingError(f"dependency distance out of range: {deps}")
    flags = 0
    if uop.taken is not None:
        flags |= 0x2 | (0x1 if uop.taken else 0)
    dep0 = deps[0] if len(deps) > 0 else 0
    dep1 = deps[1] if len(deps) > 1 else 0
    payload = uop.address if uop.op.is_memory else uop.pc
    return _RECORD.pack(
        opcode,
        flags,
        uop.size & 0xFF,
        len(deps),
        dep0,
        dep1,
        payload & 0xFFFF_FFFF_FFFF_FFFF,
    )


def decode_uop(record: bytes) -> MicroOp:
    """Decode one 16-byte record back into a micro-op."""
    if len(record) != RECORD_SIZE:
        raise EncodingError(f"record must be {RECORD_SIZE} bytes")
    opcode, flags, size, dep_count, dep0, dep1, payload = _RECORD.unpack(
        record
    )
    try:
        op = _BY_OPCODE[opcode]
    except KeyError:
        raise EncodingError(f"unknown opcode 0x{opcode:02x}") from None
    taken = bool(flags & 0x1) if flags & 0x2 else None
    deps = tuple(d for d in (dep0, dep1)[:dep_count] if d)
    if op.is_memory:
        return MicroOp(op, address=payload, size=size, deps=deps, taken=taken)
    return MicroOp(op, pc=payload, size=size, deps=deps, taken=taken)


def encode_trace(uops: Iterable[MicroOp]) -> bytes:
    """Serialise a whole trace with a header."""
    body = b"".join(encode_uop(uop) for uop in uops)
    count = len(body) // RECORD_SIZE
    return _HEADER.pack(MAGIC, VERSION, 0, count) + body


def decode_trace(data: bytes) -> List[MicroOp]:
    """Deserialise a trace; validates magic, version and length."""
    if len(data) < _HEADER.size:
        raise EncodingError("trace shorter than its header")
    magic, version, _, count = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise EncodingError("bad magic: not a REST trace")
    if version != VERSION:
        raise EncodingError(f"unsupported trace version {version}")
    body = data[_HEADER.size :]
    if len(body) != count * RECORD_SIZE:
        raise EncodingError(
            f"expected {count} records, got {len(body) / RECORD_SIZE}"
        )
    return [
        decode_uop(body[i : i + RECORD_SIZE])
        for i in range(0, len(body), RECORD_SIZE)
    ]
