"""Basic-block decomposition of executed uop traces.

The fast-tier simulator (:mod:`repro.fasttier`) models the trace as a
sequence of *basic blocks*: maximal straight-line runs of uops ended by
a control-flow uop (branch/call/ret) or by a length cap.  This module
owns the boundary rule so the characterizer (which attributes
cycle-accurate commit progress to blocks) and the analytical replayer
(which charges memoized block costs) always agree on where blocks
start and end.

Blocks are *positions* in one concrete trace, not static code: the
trace is the committed path, so a static loop body reappears as many
dynamic blocks sharing one shape class.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cpu.isa import MicroOp, OpType

#: Upper bound on block length: very long straight-line runs (libc
#: copies) are split so one class never spans wildly different cache
#: behaviour.
DEFAULT_BLOCK_CAP = 32

#: Op types whose execution cost is dominated by a multi-cycle
#: functional unit rather than the 1-cycle ALU path.
_HEAVY_OPS = frozenset((OpType.MUL, OpType.DIV, OpType.FP))


class Block:
    """One dynamic basic block: ``trace[start:end]``.

    ``shape`` is the coarse structural class key the fast tier memoizes
    under — two blocks with equal shape are assumed to cost the same
    number of cycles *given the same cache-state class* (the memo key's
    other half, computed per instance from the lean cache model).
    """

    __slots__ = ("start", "end", "shape", "ctrl_taken", "ctrl_pc")

    def __init__(self, start, end, shape, ctrl_taken, ctrl_pc):
        self.start = start
        self.end = end
        self.shape = shape
        #: Terminator outcome (None when the block was cap-split or is
        #: the trace tail without a control uop).
        self.ctrl_taken = ctrl_taken
        self.ctrl_pc = ctrl_pc

    def __len__(self):
        return self.end - self.start

    def __repr__(self):
        return f"Block({self.start}:{self.end}, shape={self.shape})"


def split_blocks(
    trace: Sequence[MicroOp], cap: int = DEFAULT_BLOCK_CAP
) -> List[Block]:
    """Decompose ``trace`` into basic blocks.

    A block ends after a control uop (the terminator belongs to the
    block) or after ``cap`` uops, whichever comes first.  The shape key
    is ``(n_uops, n_loads, n_stores, n_rest, n_heavy, ctrl_kind)``
    where ``ctrl_kind`` is 0 (no terminator), 1 (branch) or 2
    (call/ret), and ``n_rest`` counts arm/disarm token ops — the part
    of the mix each defense mode adds.
    """
    if cap <= 0:
        raise ValueError("block cap must be positive")
    blocks: List[Block] = []
    append = blocks.append
    heavy = _HEAVY_OPS
    ot_load = OpType.LOAD
    n = len(trace)
    start = 0
    loads = stores = rest = hvy = 0
    for index in range(n):
        uop = trace[index]
        op = uop.op
        if op.is_memory:
            if op is ot_load:
                loads += 1
            elif op.is_store_like:
                if op is OpType.STORE:
                    stores += 1
                else:
                    rest += 1
        elif op in heavy:
            hvy += 1
        is_ctrl = op.is_control
        length = index + 1 - start
        if is_ctrl or length >= cap:
            ctrl_kind = 0
            taken = None
            pc = 0
            if is_ctrl:
                ctrl_kind = 1 if op is OpType.BRANCH else 2
                taken = uop.taken
                pc = uop.pc
            append(
                Block(
                    start,
                    index + 1,
                    (length, loads, stores, rest, hvy, ctrl_kind),
                    taken,
                    pc,
                )
            )
            start = index + 1
            loads = stores = rest = hvy = 0
    if start < n:
        append(
            Block(
                start,
                n,
                (n - start, loads, stores, rest, hvy, 0),
                None,
                0,
            )
        )
    return blocks


def block_boundaries(blocks: Sequence[Block]) -> List[int]:
    """Cumulative committed-uop counts at each block end.

    The characterizer watches ``stats.committed`` cross these values
    while stepping the cycle-accurate core to attribute cycles to
    blocks (see :meth:`repro.cpu.pipeline.OutOfOrderCore.run_attributed`).
    """
    return [block.end for block in blocks]
