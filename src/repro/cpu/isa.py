"""Micro-op level ISA for the simulated core.

The paper implements ``arm``/``disarm`` by appropriating x86 encodings;
at the micro-op level they are stores with an implicit, secret operand.
Every other op is the usual RISC diet.  Dependencies are expressed as
relative back-references (in dynamic-instruction distance) to producer
ops, which is what a register renamer would recover anyway and keeps the
trace format compact and renaming-free.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple


class OpType(enum.Enum):
    """Dynamic micro-op categories with their execute latencies.

    ``is_memory`` / ``is_store_like`` / ``is_control`` / ``base_latency``
    are plain per-member attributes (assigned below, not properties):
    the pipeline reads them several times per micro-op, and an attribute
    load is several times cheaper than a property call doing a frozenset
    membership test.
    """

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    RET = "ret"
    ARM = "arm"
    DISARM = "disarm"
    NOP = "nop"


_MEMORY_OPS = frozenset(
    {OpType.LOAD, OpType.STORE, OpType.ARM, OpType.DISARM}
)
_STORE_LIKE = frozenset({OpType.STORE, OpType.ARM, OpType.DISARM})
_CONTROL = frozenset({OpType.BRANCH, OpType.CALL, OpType.RET})
_LATENCY = {
    OpType.ALU: 1,
    OpType.MUL: 3,
    OpType.DIV: 12,
    OpType.FP: 4,
    OpType.LOAD: 0,  # memory time comes from the hierarchy
    OpType.STORE: 1,  # address generation
    OpType.BRANCH: 1,
    OpType.CALL: 1,
    OpType.RET: 1,
    OpType.ARM: 1,
    OpType.DISARM: 1,
    OpType.NOP: 1,
}

for _op in OpType:
    _op.is_memory = _op in _MEMORY_OPS
    _op.is_store_like = _op in _STORE_LIKE
    _op.is_control = _op in _CONTROL
    _op.base_latency = _LATENCY[_op]
del _op


class MicroOp:
    """One dynamic micro-op in the instruction stream."""

    __slots__ = (
        "op",
        "pc",
        "address",
        "size",
        "deps",
        "taken",
        "seq",
        "sid",
    )

    def __init__(
        self,
        op: OpType,
        pc: int = 0,
        address: int = 0,
        size: int = 0,
        deps: Tuple[int, ...] = (),
        taken: Optional[bool] = None,
    ) -> None:
        self.op = op
        self.pc = pc
        self.address = address
        self.size = size
        #: Relative distances (>=1) to older producer ops.
        self.deps = deps
        #: Branch outcome (None for non-control ops).
        self.taken = taken
        #: Dynamic sequence number, assigned by the core at fetch.
        self.seq = -1
        #: Static statement id: dense per-run index of the op's code
        #: address, stamped by the trace generator (-1 when the trace
        #: did not come through :class:`repro.runtime.machine.Machine`).
        #: Not serialized by :mod:`repro.cpu.encoding` — it is derived
        #: state, reconstructible from the pc stream.
        self.sid = -1

    def __repr__(self) -> str:
        extra = ""
        if self.op.is_memory:
            extra = f" @0x{self.address:x}+{self.size}"
        if self.op.is_control:
            extra = f" taken={self.taken}"
        return f"MicroOp({self.op.value}{extra}, pc=0x{self.pc:x})"


def load(address: int, size: int = 8, deps: Tuple[int, ...] = (), pc: int = 0) -> MicroOp:
    return MicroOp(OpType.LOAD, pc=pc, address=address, size=size, deps=deps)


def store(address: int, size: int = 8, deps: Tuple[int, ...] = (), pc: int = 0) -> MicroOp:
    return MicroOp(OpType.STORE, pc=pc, address=address, size=size, deps=deps)


def alu(deps: Tuple[int, ...] = (), pc: int = 0) -> MicroOp:
    return MicroOp(OpType.ALU, pc=pc, deps=deps)


def branch(taken: bool, pc: int = 0, deps: Tuple[int, ...] = ()) -> MicroOp:
    return MicroOp(OpType.BRANCH, pc=pc, deps=deps, taken=taken)


def arm_op(address: int, pc: int = 0) -> MicroOp:
    return MicroOp(OpType.ARM, pc=pc, address=address, size=0)


def disarm_op(address: int, pc: int = 0) -> MicroOp:
    return MicroOp(OpType.DISARM, pc=pc, address=address, size=0)
