"""Load/store queue with the REST forwarding modification (Figure 5).

The LSQ supports store-to-load forwarding.  Arm and disarm are
functionally stores, but they must never forward their value to younger
loads — the token is a secret.  The paper's design splits the CAM match
into a cache-line-address match plus a remainder match and adds a few
gates so that:

* a load that would forward from an in-flight **arm** raises a
  privileged REST exception instead of forwarding;
* a store whose line address matches an in-flight **arm** raises;
* a disarm whose location matches an in-flight **disarm** raises
  (double disarm of the same location in flight);
* arm/disarm entries carry **no value** in the store queue — their write
  data is implicit and known by the cache, so SQ data width is unchanged
  despite the logically 64-byte-wide writes.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

from repro.core.exceptions import RestException, RestFaultKind


class SqEntryKind(enum.Enum):
    STORE = "store"
    ARM = "arm"
    DISARM = "disarm"


class SqEntry:
    __slots__ = ("seq", "kind", "address", "size", "drained", "has_value")

    def __init__(self, seq: int, kind: SqEntryKind, address: int, size: int) -> None:
        self.seq = seq
        self.kind = kind
        self.address = address
        self.size = size
        self.drained = False
        #: Arm/disarm entries never carry a value (paper Figure 5).
        self.has_value = kind is SqEntryKind.STORE


class LoadStoreQueue:
    """Split 32-entry load queue and 32-entry store queue (Table II)."""

    def __init__(
        self, lq_entries: int = 32, sq_entries: int = 32, line_size: int = 64
    ) -> None:
        if lq_entries <= 0 or sq_entries <= 0:
            raise ValueError("LSQ queues must have positive capacity")
        self.lq_entries = lq_entries
        self.sq_entries = sq_entries
        self.line_size = line_size
        self._lq: Deque[int] = deque()  # just seq numbers; loads hold no data
        self._sq: Deque[SqEntry] = deque()
        #: Non-drained ARM entries in the SQ.  Lets check_store skip its
        #: CAM scan entirely when no arm is in flight (always, for
        #: defenses that never arm).
        self._arms_live = 0
        self.forwards = 0
        self.forward_blocked = 0
        self.lq_full_cycles = 0
        self.sq_full_cycles = 0
        self.rest_violations = 0

    # -- occupancy --------------------------------------------------------

    @property
    def lq_full(self) -> bool:
        return len(self._lq) >= self.lq_entries

    @property
    def sq_full(self) -> bool:
        return len(self._sq) >= self.sq_entries

    @property
    def lq_occupancy(self) -> int:
        return len(self._lq)

    @property
    def sq_occupancy(self) -> int:
        return len(self._sq)

    # -- dispatch ----------------------------------------------------------

    def dispatch_load(self, seq: int) -> None:
        if self.lq_full:
            raise RuntimeError("LQ overflow: caller must check lq_full")
        self._lq.append(seq)

    def dispatch_store_like(
        self, seq: int, kind: SqEntryKind, address: int, size: int
    ) -> SqEntry:
        """Insert a store/arm/disarm into the SQ (Table I, LSQ column)."""
        if self.sq_full:
            raise RuntimeError("SQ overflow: caller must check sq_full")
        if kind is SqEntryKind.DISARM:
            # Find the youngest in-flight entry for this location: two
            # disarms with no intervening arm is the double-free
            # signature Table I flags; disarm-arm-disarm (frame reuse)
            # is legal.
            youngest = None
            for entry in self._sq:
                if not entry.drained and entry.address == address:
                    youngest = entry
            if youngest is not None and youngest.kind is SqEntryKind.DISARM:
                self.rest_violations += 1
                raise RestException(
                    address,
                    RestFaultKind.LSQ_DOUBLE_DISARM,
                    precise=True,
                )
        entry = SqEntry(seq, kind, address, size)
        self._sq.append(entry)
        if kind is SqEntryKind.ARM:
            self._arms_live += 1
        return entry

    # -- the Figure 5 matching logic ---------------------------------------

    def _line(self, address: int) -> int:
        return address - (address % self.line_size)

    @staticmethod
    def _overlaps(entry: SqEntry, address: int, size: int) -> bool:
        return (
            address < entry.address + entry.size
            and entry.address < address + size
        )

    def search_for_load(self, seq: int, address: int, size: int) -> Optional[SqEntry]:
        """CAM search of older SQ entries for a load.

        Returns the youngest older STORE entry that fully covers the load
        (forwarding source), or None if the load must go to the cache.
        Raises a REST exception if the match is an arm entry: bit-for-bit
        this is the "line-address match AND entry-is-arm" gate the paper
        adds to the existing matching logic.
        """
        # Figure 5: the CAM match is a line-address match plus a
        # remainder match.  Age matters: the *youngest* older entry
        # overlapping the load decides the outcome — an intervening
        # disarm makes a load after an arm legal again.
        # (_overlaps is inlined: this scan runs for every load issued.)
        youngest: Optional[SqEntry] = None
        end = address + size
        for entry in self._sq:
            if entry.seq >= seq or entry.drained:
                continue
            if address < entry.address + entry.size and entry.address < end:
                youngest = entry
        if youngest is None:
            return None
        if youngest.kind is SqEntryKind.ARM:
            self.rest_violations += 1
            raise RestException(
                address,
                RestFaultKind.LSQ_FORWARD_FROM_ARM,
                precise=True,
            )
        if youngest.kind is SqEntryKind.DISARM:
            # Disarm carries no value; the load waits for the cache.
            return None
        if (
            youngest.address <= address
            and address + size <= youngest.address + youngest.size
        ):
            self.forwards += 1
            return youngest
        self.forward_blocked += 1
        return None

    def check_store(self, seq: int, address: int, size: int) -> None:
        """Table I: raise if the SQ holds an older arm for this location."""
        if not self._arms_live:
            # No in-flight arm can match; the gate cannot fire.  The
            # exception below is the scan's only observable effect.
            return
        youngest: Optional[SqEntry] = None
        end = address + size
        for entry in self._sq:
            if entry.seq >= seq or entry.drained:
                continue
            if address < entry.address + entry.size and entry.address < end:
                youngest = entry
        if youngest is not None and youngest.kind is SqEntryKind.ARM:
            self.rest_violations += 1
            raise RestException(
                address,
                RestFaultKind.LSQ_STORE_OVER_ARM,
                precise=True,
            )

    # -- retirement ---------------------------------------------------------

    def retire_load(self, seq: int) -> None:
        if self._lq and self._lq[0] == seq:
            self._lq.popleft()
        else:
            try:
                self._lq.remove(seq)
            except ValueError:
                pass

    def retire_store_like(self, seq: int) -> None:
        for entry in self._sq:
            if entry.seq == seq:
                if not entry.drained and entry.kind is SqEntryKind.ARM:
                    self._arms_live -= 1
                entry.drained = True
                break
        while self._sq and self._sq[0].drained:
            self._sq.popleft()

    def flush(self) -> None:
        self._lq.clear()
        self._sq.clear()
        self._arms_live = 0

    def reset_stats(self) -> None:
        self.forwards = 0
        self.forward_blocked = 0
        self.lq_full_cycles = 0
        self.sq_full_cycles = 0
        self.rest_violations = 0
