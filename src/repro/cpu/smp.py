"""Cycle-interleaved multicore execution over coherent REST hardware.

The paper's hardware claim covers "multicore, out-of-order processors"
(§I): the REST modifications are local to the L1-D and the LSQ, so
several cores with private L1s just work over an unmodified coherence
protocol.  This module runs N out-of-order cores cycle-by-cycle over a
:class:`~repro.cache.coherence.MulticoreHierarchy`, each consuming its
own trace, with every memory operation routed through the snoop layer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cache.coherence import MulticoreHierarchy
from repro.cache.hierarchy import HierarchyConfig
from repro.core.token import TokenConfigRegister
from repro.cpu.isa import MicroOp
from repro.cpu.pipeline import CoreConfig, OutOfOrderCore
from repro.cpu.stats import CoreStats


class _SnoopedHierarchy:
    """Per-core facade: the single-core hierarchy interface, with every
    access routed through the multicore snoop layer first.

    Everything a core reads structurally (config, detector, caches,
    mode, line size) delegates to the core's private hierarchy; only
    the four access operations change behaviour.
    """

    def __init__(self, smp: MulticoreHierarchy, core_index: int) -> None:
        self._smp = smp
        self._core_index = core_index
        self._local = smp.core(core_index)

    def __getattr__(self, name):
        return getattr(self._local, name)

    def read(self, address, size, privilege=None, cycle=None):
        del cycle
        if privilege is None:
            return self._smp.read(self._core_index, address, size)
        return self._smp.read(
            self._core_index, address, size, privilege=privilege
        )

    def write(self, address, data, privilege=None, cycle=None):
        del cycle
        if privilege is None:
            return self._smp.write(self._core_index, address, data)
        return self._smp.write(
            self._core_index, address, data, privilege=privilege
        )

    def arm(self, address, cycle=None):
        del cycle
        return self._smp.arm(self._core_index, address)

    def disarm(self, address, cycle=None):
        del cycle
        return self._smp.disarm(self._core_index, address)


class SmpSystem:
    """N cores, private L1-Ds, shared L2/memory, one token register."""

    def __init__(
        self,
        cores: int = 2,
        hierarchy_config: Optional[HierarchyConfig] = None,
        token_config: Optional[TokenConfigRegister] = None,
        core_config: Optional[CoreConfig] = None,
    ) -> None:
        self.memory = MulticoreHierarchy(
            cores=cores,
            config=hierarchy_config,
            token_config=token_config,
        )
        self.cores: List[OutOfOrderCore] = [
            OutOfOrderCore(
                _SnoopedHierarchy(self.memory, index), config=core_config
            )
            for index in range(cores)
        ]

    def run(
        self,
        traces: Sequence[Sequence[MicroOp]],
        max_cycles: Optional[int] = None,
    ) -> List[CoreStats]:
        """Run one trace per core, interleaved cycle-by-cycle.

        Returns each core's stats.  A REST exception on any core
        propagates (with that core's cycle stamped); the other cores'
        stats reflect their progress at that point.
        """
        if len(traces) != len(self.cores):
            raise ValueError(
                f"need {len(self.cores)} traces, got {len(traces)}"
            )
        steppers = [
            core.run_stepwise(trace, max_cycles=max_cycles)
            for core, trace in zip(self.cores, traces)
        ]
        active = list(range(len(steppers)))
        while active:
            for index in list(active):
                try:
                    next(steppers[index])
                except StopIteration:
                    active.remove(index)
        return [core.stats for core in self.cores]
