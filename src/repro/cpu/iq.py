"""Issue queue.

Holds dispatched ops until their source operands are ready, then issues
up to the issue width per cycle.  The paper's in-text results call out
issue-queue pressure: in debug mode, delayed store commit backs the ROB
up into the IQ, and for xalanc the number of IQ-full cycles differed by
more than 100x between the secure and debug modes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.rob import RobEntry


class IqSlot:
    __slots__ = ("entry", "ready_cycle")

    def __init__(self, entry: RobEntry, ready_cycle: int) -> None:
        self.entry = entry
        #: Earliest cycle all source operands are available.
        self.ready_cycle = ready_cycle


class IssueQueue:
    """Bounded out-of-order scheduling window."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("IQ capacity must be positive")
        self.capacity = capacity
        self._slots: List[IqSlot] = []
        self.full_cycles = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def full(self) -> bool:
        return len(self._slots) >= self.capacity

    def push(self, entry: RobEntry, ready_cycle: int) -> None:
        if self.full:
            raise RuntimeError("IQ overflow: caller must check full first")
        self._slots.append(IqSlot(entry, ready_cycle))
        if len(self._slots) > self.max_occupancy:
            self.max_occupancy = len(self._slots)

    def issue_ready(self, cycle: int, width: int) -> List[RobEntry]:
        """Remove and return up to ``width`` ops ready at ``cycle``.

        Oldest-first selection, matching common select logic.
        """
        issued: List[RobEntry] = []
        remaining: List[IqSlot] = []
        for slot in self._slots:
            if len(issued) < width and slot.ready_cycle <= cycle:
                issued.append(slot.entry)
            else:
                remaining.append(slot)
        self._slots = remaining
        return issued

    def flush(self) -> None:
        self._slots.clear()

    def reset_stats(self) -> None:
        self.full_cycles = 0
        self.max_occupancy = 0
