"""Branch predictor model.

Table II specifies an L-TAGE predictor with 13 components and ~31k
entries.  A faithful L-TAGE is overkill for the questions this
reproduction answers (REST adds no branches on the hot path; ASan adds
one highly-biased branch per memory access), so we model a gshare
predictor with a generously sized table plus a bimodal fallback — the
accuracy regime is the same for the biased branches that dominate these
workloads, and mispredictions still cost a full pipeline redirect.
"""

from __future__ import annotations


class BranchPredictor:
    """Gshare with bimodal fallback; 2-bit saturating counters."""

    def __init__(self, table_bits: int = 14, history_bits: int = 12) -> None:
        if table_bits <= 0 or history_bits < 0:
            raise ValueError("predictor geometry must be positive")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._gshare = [2] * (1 << table_bits)  # weakly taken
        self._bimodal = [2] * (1 << table_bits)
        self._chooser = [2] * (1 << table_bits)  # prefers gshare
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def _indices(self, pc: int) -> tuple:
        base = (pc >> 2) & self._mask
        gidx = base ^ (self._history & self._mask)
        return base, gidx

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``; train on the actual outcome.

        Returns True when the prediction was correct.
        """
        base, gidx = self._indices(pc)
        gshare_taken = self._gshare[gidx] >= 2
        bimodal_taken = self._bimodal[base] >= 2
        use_gshare = self._chooser[base] >= 2
        predicted = gshare_taken if use_gshare else bimodal_taken
        correct = predicted == taken

        self.predictions += 1
        if not correct:
            self.mispredictions += 1

        # Train the chooser toward whichever component was right.
        if gshare_taken != bimodal_taken:
            if gshare_taken == taken:
                self._chooser[base] = min(3, self._chooser[base] + 1)
            else:
                self._chooser[base] = max(0, self._chooser[base] - 1)
        # Train both components.
        for table, idx in ((self._gshare, gidx), (self._bimodal, base)):
            if taken:
                table[idx] = min(3, table[idx] + 1)
            else:
                table[idx] = max(0, table[idx] - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return correct

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0
