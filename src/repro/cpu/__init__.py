"""Out-of-order core substrate.

A cycle-level model of the Table II core: 8-wide fetch/issue/writeback,
192-entry ROB, 64-entry issue queue, 32-entry load and store queues with
store-to-load forwarding, and an L-TAGE-class branch predictor stand-in.
The REST additions live in the LSQ (arm/disarm entries never forward,
and forwarding hits on them raise the privileged REST exception — paper
Figure 5) and in the commit policy (secure mode commits stores eagerly;
debug mode holds the ROB head until the write completes).
"""

from repro.cpu.isa import MicroOp, OpType
from repro.cpu.bpred import BranchPredictor
from repro.cpu.lsq import LoadStoreQueue, SqEntryKind
from repro.cpu.rob import ReorderBuffer
from repro.cpu.iq import IssueQueue
from repro.cpu.stats import CoreStats
from repro.cpu.pipeline import CoreConfig, OutOfOrderCore
from repro.cpu.smp import SmpSystem

__all__ = [
    "SmpSystem",
    "BranchPredictor",
    "CoreConfig",
    "CoreStats",
    "IssueQueue",
    "LoadStoreQueue",
    "MicroOp",
    "OpType",
    "OutOfOrderCore",
    "ReorderBuffer",
    "SqEntryKind",
]
