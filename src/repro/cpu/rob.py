"""Reorder buffer.

A bounded FIFO of in-flight micro-ops.  Commit is in order and bounded
by the commit width; the REST-relevant behaviour is at the head: in
debug mode a store-like op (store/arm/disarm) may not commit until its
write has completed, and the cycles the head spends blocked this way are
the paper's "ROB blocked by a store" statistic (Section VI-B observed it
an order of magnitude higher in debug mode).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.cpu.isa import MicroOp


class RobEntry:
    __slots__ = (
        "uop",
        "completed",
        "complete_cycle",
        "write_done_cycle",
        "write_latency",
    )

    def __init__(self, uop: MicroOp) -> None:
        self.uop = uop
        self.completed = False
        #: Cycle at which the op's result is available.
        self.complete_cycle = -1
        #: For store-like ops: cycle the cache write finishes.  Stores
        #: perform their cache write when they retire; debug mode gates
        #: commit on completion of that write (secure mode commits
        #: eagerly and lets the write drain in the background).
        self.write_done_cycle = -1
        #: Cache latency of the write, measured at execute.
        self.write_latency = 0


class ReorderBuffer:
    """In-order retirement window."""

    def __init__(self, capacity: int = 192) -> None:
        if capacity <= 0:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[RobEntry] = deque()
        self.full_cycles = 0
        self.blocked_by_store_cycles = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, uop: MicroOp) -> RobEntry:
        if self.full:
            raise RuntimeError("ROB overflow: caller must check full first")
        entry = RobEntry(uop)
        self._entries.append(entry)
        if len(self._entries) > self.max_occupancy:
            self.max_occupancy = len(self._entries)
        return entry

    def head(self) -> Optional[RobEntry]:
        return self._entries[0] if self._entries else None

    def pop_head(self) -> RobEntry:
        return self._entries.popleft()

    def flush(self) -> None:
        self._entries.clear()

    def reset_stats(self) -> None:
        self.full_cycles = 0
        self.blocked_by_store_cycles = 0
        self.max_occupancy = 0
