"""Aggregated core statistics for one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CoreStats:
    """Counters collected by the out-of-order core.

    The fields mirror the quantities the paper reports in Section VI-B:
    total cycles (runtime), ROB cycles blocked by a store at the head
    (an order of magnitude higher in debug mode), IQ-full cycles (100x
    higher for xalanc in debug mode), and instruction mix counts.
    """

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    #: Cycles in which at least one instruction committed — the
    #: "usefully retiring" cycles the top-down stall decomposition
    #: attributes to its ``base`` bucket.
    commit_active_cycles: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)
    rob_blocked_by_store_cycles: int = 0
    rob_full_cycles: int = 0
    iq_full_cycles: int = 0
    lq_full_cycles: int = 0
    sq_full_cycles: int = 0
    branch_mispredicts: int = 0
    mispredict_stall_cycles: int = 0
    lsq_forwards: int = 0
    icache_stall_cycles: int = 0
    #: Summed latency of data-side accesses (loads/stores/arm/disarm)
    #: that missed all the way to memory — the DRAM exposure the
    #: top-down stall decomposition charges its ``dram`` bucket from.
    dram_stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.committed if self.committed else 0.0

    def count_op(self, name: str) -> None:
        self.op_counts[name] = self.op_counts.get(name, 0) + 1

    def merge_from(self, other: "CoreStats") -> None:
        """Accumulate another run's counters into this one."""
        self.cycles += other.cycles
        self.committed += other.committed
        self.fetched += other.fetched
        self.commit_active_cycles += other.commit_active_cycles
        self.rob_blocked_by_store_cycles += other.rob_blocked_by_store_cycles
        self.rob_full_cycles += other.rob_full_cycles
        self.iq_full_cycles += other.iq_full_cycles
        self.lq_full_cycles += other.lq_full_cycles
        self.sq_full_cycles += other.sq_full_cycles
        self.branch_mispredicts += other.branch_mispredicts
        self.mispredict_stall_cycles += other.mispredict_stall_cycles
        self.lsq_forwards += other.lsq_forwards
        self.icache_stall_cycles += other.icache_stall_cycles
        self.dram_stall_cycles += other.dram_stall_cycles
        for name, count in other.op_counts.items():
            self.op_counts[name] = self.op_counts.get(name, 0) + count
