"""Cycle-level out-of-order core (Table II configuration).

Trace-driven: the core consumes a stream of ``MicroOp``s (from the
workload generator or the runtime lowering), models fetch/dispatch/
issue/execute/commit with the Table II structure sizes, performs memory
accesses against the REST-extended hierarchy at execute, and enforces
the two commit policies:

* **secure mode** — stores (and arm/disarm) commit eagerly as soon as
  they are the oldest instruction; a REST violation detected after that
  point is reported imprecisely (the hierarchy already tags it so);
* **debug mode** — a store-like op at the ROB head may not commit until
  its cache write has completed, which is precisely the mechanism the
  paper identifies as the source of the debug-mode slowdown (ROB blocked
  by stores ~10x more, IQ-full cycles up to 100x for xalanc).

Memory operations execute in program order with respect to each other
(a conservative memory unit): this keeps the architectural token state
exactly sequential, which Table I semantics rely on, while still letting
compute ops reorder freely around them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Optional

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.modes import Mode
from repro.cpu.bpred import BranchPredictor
from repro.cpu.iq import IssueQueue
from repro.cpu.isa import MicroOp, OpType
from repro.cpu.lsq import LoadStoreQueue, SqEntryKind
from repro.cpu.rob import ReorderBuffer
from repro.cpu.stats import CoreStats

_ZEROS = bytes(64)

_SQ_KIND = {
    OpType.STORE: SqEntryKind.STORE,
    OpType.ARM: SqEntryKind.ARM,
    OpType.DISARM: SqEntryKind.DISARM,
}


@dataclass(frozen=True)
class CoreConfig:
    """Core structure sizes and widths (defaults: Table II)."""

    fetch_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    rob_entries: int = 192
    iq_entries: int = 64
    lq_entries: int = 32
    sq_entries: int = 32
    fetch_buffer_entries: int = 16
    mispredict_penalty: int = 12
    #: Ablation: the paper's rejected simple design that serialises
    #: arm/disarm execution (each must be the only in-flight
    #: instruction) instead of modifying the LSQ matching logic.
    serialize_rest_ops: bool = False

    @classmethod
    def in_order(cls) -> "CoreConfig":
        """A 1-wide, tiny-window configuration approximating an in-order
        core (the paper ran the Figure 3 breakdown on an in-order core).
        """
        return cls(
            fetch_width=1,
            dispatch_width=1,
            issue_width=1,
            commit_width=1,
            rob_entries=8,
            iq_entries=2,
            lq_entries=4,
            sq_entries=4,
            fetch_buffer_entries=4,
            mispredict_penalty=6,
        )


class OutOfOrderCore:
    """Trace-driven cycle-level OoO core bound to a memory hierarchy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        config: Optional[CoreConfig] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config or CoreConfig()
        self.rob = ReorderBuffer(self.config.rob_entries)
        self.iq = IssueQueue(self.config.iq_entries)
        self.lsq = LoadStoreQueue(
            self.config.lq_entries,
            self.config.sq_entries,
            line_size=hierarchy.line_size,
        )
        self.bpred = BranchPredictor()
        self.stats = CoreStats()
        self._cycle = 0

    @property
    def mode(self) -> Mode:
        return self.hierarchy.mode

    def run(
        self, uops: Iterable[MicroOp], max_cycles: Optional[int] = None
    ) -> CoreStats:
        """Run the trace to completion; returns the collected stats.

        REST exceptions raised at execute propagate to the caller with
        the faulting cycle stamped on them; the stats object reflects
        progress up to the fault.
        """
        for _ in self.run_stepwise(uops, max_cycles=max_cycles):
            pass
        return self.stats

    def run_stepwise(
        self, uops: Iterable[MicroOp], max_cycles: Optional[int] = None
    ):
        """Generator variant of :meth:`run`: yields after every cycle.

        Lets an SMP executor interleave several cores cycle-by-cycle
        over a coherent memory system (see :mod:`repro.cpu.smp`).
        """
        config = self.config
        stats = self.stats
        rob = self.rob
        iq = self.iq
        lsq = self.lsq
        mode_debug = self.mode is Mode.DEBUG

        trace = iter(uops)
        fetch_buffer: Deque[MicroOp] = deque()
        trace_done = False
        fetch_stall_until = 0
        seq = 0
        cycle = self._cycle
        start_cycle = cycle
        #: seq -> cycle its result is available (never pruned in-run).
        completion: Dict[int, int] = {}
        #: program-order queue of unexecuted memory ops.
        mem_order: Deque[int] = deque()
        #: serialize_rest_ops ablation: arm/disarm ops still in flight.
        rest_in_flight = 0
        #: instruction-fetch line tracking for the L1-I.
        last_fetch_line = -1
        line_mask = ~(self.hierarchy.line_size - 1)

        try:
            while not trace_done or fetch_buffer or not rob.empty:
                cycle += 1
                self._cycle = cycle
                if max_cycles is not None and cycle - start_cycle > max_cycles:
                    raise RuntimeError("simulation exceeded max_cycles")

                # ---- commit (in order, up to commit width) ----
                committed_now = 0
                while committed_now < config.commit_width:
                    head = rob.head()
                    if head is None:
                        break
                    head_seq = head.uop.seq
                    done_cycle = completion.get(head_seq)
                    blocked = done_cycle is None or done_cycle > cycle
                    if not blocked and mode_debug and head.uop.op.is_store_like:
                        # Debug mode: the cache write starts when the
                        # store retires; hold the head until it is done.
                        if head.write_done_cycle < 0:
                            head.write_done_cycle = (
                                cycle + head.write_latency
                            )
                        blocked = head.write_done_cycle > cycle
                    if blocked:
                        if head.uop.op.is_store_like:
                            rob.blocked_by_store_cycles += 1
                            stats.rob_blocked_by_store_cycles += 1
                        break
                    rob.pop_head()
                    op_type = head.uop.op
                    if op_type is OpType.LOAD:
                        lsq.retire_load(head_seq)
                    elif op_type.is_store_like:
                        lsq.retire_store_like(head_seq)
                        if (
                            config.serialize_rest_ops
                            and op_type is not OpType.STORE
                        ):
                            rest_in_flight -= 1
                    stats.committed += 1
                    stats.count_op(op_type.value)
                    committed_now += 1

                # ---- issue (up to issue width, oldest-first select) ----
                if iq._slots:
                    mem_head = mem_order[0] if mem_order else -1
                    issued = 0
                    remaining = []
                    for slot in iq._slots:
                        if issued >= config.issue_width:
                            remaining.append(slot)
                            continue
                        uop = slot.entry.uop
                        ready = True
                        for distance in uop.deps:
                            producer_seq = uop.seq - distance
                            if producer_seq >= 0:
                                done = completion.get(producer_seq)
                                if done is None or done > cycle:
                                    ready = False
                                    break
                        if not ready:
                            remaining.append(slot)
                            continue
                        if uop.op.is_memory and uop.seq != mem_head:
                            remaining.append(slot)
                            continue
                        self._execute(uop, slot.entry, cycle, completion, lsq)
                        if uop.op.is_memory:
                            mem_order.popleft()
                            mem_head = mem_order[0] if mem_order else -1
                        issued += 1
                    iq._slots = remaining

                # ---- dispatch (fetch buffer -> ROB/IQ/LSQ) ----
                dispatched = 0
                blocked_reason = None
                while dispatched < config.dispatch_width and fetch_buffer:
                    uop = fetch_buffer[0]
                    if config.serialize_rest_ops and rest_in_flight:
                        break  # machine drains before anything follows
                    if rob.full:
                        blocked_reason = "rob"
                        break
                    if iq.full:
                        blocked_reason = "iq"
                        break
                    op_type = uop.op
                    if config.serialize_rest_ops and op_type in (
                        OpType.ARM,
                        OpType.DISARM,
                    ):
                        # Rejected design (paper §III-B): an arm/disarm
                        # must be the only in-flight instruction.
                        if not rob.empty:
                            break
                        fetch_buffer.popleft()
                        uop.seq = seq
                        seq += 1
                        entry = rob.push(uop)
                        iq.push(entry, cycle)
                        lsq.dispatch_store_like(
                            uop.seq,
                            _SQ_KIND[op_type],
                            uop.address,
                            self.hierarchy.detector.token.width,
                        )
                        mem_order.append(uop.seq)
                        rest_in_flight += 1
                        dispatched += 1
                        break  # nothing may follow it this cycle
                    if op_type is OpType.LOAD and lsq.lq_full:
                        blocked_reason = "lq"
                        break
                    if op_type.is_store_like and lsq.sq_full:
                        blocked_reason = "sq"
                        break
                    fetch_buffer.popleft()
                    uop.seq = seq
                    seq += 1
                    entry = rob.push(uop)
                    iq.push(entry, cycle)
                    if op_type is OpType.LOAD:
                        lsq.dispatch_load(uop.seq)
                        mem_order.append(uop.seq)
                    elif op_type.is_store_like:
                        if op_type is OpType.STORE:
                            entry_size = uop.size or 8
                        else:
                            # Arm/disarm cover a whole token slot.
                            entry_size = self.hierarchy.detector.token.width
                        lsq.dispatch_store_like(
                            uop.seq,
                            _SQ_KIND[op_type],
                            uop.address,
                            entry_size,
                        )
                        mem_order.append(uop.seq)
                    dispatched += 1
                if blocked_reason == "rob":
                    rob.full_cycles += 1
                    stats.rob_full_cycles += 1
                elif blocked_reason == "iq":
                    iq.full_cycles += 1
                    stats.iq_full_cycles += 1
                elif blocked_reason == "lq":
                    lsq.lq_full_cycles += 1
                    stats.lq_full_cycles += 1
                elif blocked_reason == "sq":
                    lsq.sq_full_cycles += 1
                    stats.sq_full_cycles += 1

                # ---- fetch (trace -> fetch buffer) ----
                if cycle >= fetch_stall_until and not trace_done:
                    fetched = 0
                    while (
                        fetched < config.fetch_width
                        and len(fetch_buffer) < config.fetch_buffer_entries
                    ):
                        try:
                            uop = next(trace)
                        except StopIteration:
                            trace_done = True
                            break
                        fetch_line = uop.pc & line_mask
                        if fetch_line != last_fetch_line:
                            last_fetch_line = fetch_line
                            stall = self.hierarchy.fetch_line(uop.pc)
                            if stall:
                                stats.icache_stall_cycles += stall
                                fetch_stall_until = cycle + stall
                                fetch_buffer.append(uop)
                                fetched += 1
                                stats.fetched += 1
                                break
                        fetch_buffer.append(uop)
                        fetched += 1
                        stats.fetched += 1
                        if uop.op.is_control and uop.taken is not None:
                            correct = self.bpred.predict_and_update(
                                uop.pc, uop.taken
                            )
                            if not correct:
                                stats.branch_mispredicts += 1
                                stats.mispredict_stall_cycles += (
                                    config.mispredict_penalty
                                )
                                fetch_stall_until = (
                                    cycle + config.mispredict_penalty
                                )
                                break

                yield cycle
        finally:
            stats.cycles = cycle
            stats.lsq_forwards = lsq.forwards

    def _execute(
        self,
        uop: MicroOp,
        entry,
        cycle: int,
        completion: Dict[int, int],
        lsq: LoadStoreQueue,
    ) -> None:
        """Execute one op; memory ops touch the hierarchy here."""
        op_type = uop.op
        hierarchy = self.hierarchy
        try:
            if op_type is OpType.LOAD:
                forwarded = lsq.search_for_load(
                    uop.seq, uop.address, uop.size or 8
                )
                if forwarded is not None:
                    latency = 1
                else:
                    _, result = hierarchy.read(
                        uop.address, uop.size or 8, cycle=cycle
                    )
                    latency = result.latency
                completion[uop.seq] = cycle + max(1, latency)
            elif op_type is OpType.STORE:
                lsq.check_store(uop.seq, uop.address, uop.size or 8)
                hierarchy.write(
                    uop.address, _ZEROS[: uop.size or 8], cycle=cycle
                )
                completion[uop.seq] = cycle + 1
                # The execute-time access brought the line into L1
                # (write-allocate), so the retirement-time write that
                # debug mode waits on is an L1 hit: the request/ack
                # round trip costs two traversals of the hit path.
                entry.write_latency = 2 * hierarchy.config.l1d.hit_latency
            elif op_type is OpType.ARM:
                hierarchy.arm(uop.address, cycle=cycle)
                completion[uop.seq] = cycle + 1
                if hierarchy.config.token_staging_entries:
                    # §VIII extension: the dedicated REST-line staging
                    # structure acks token writes immediately.
                    entry.write_latency = 1
                else:
                    # Arm hits complete in 1 cycle; the commit-time ack
                    # still takes the L1 round trip.
                    entry.write_latency = (
                        1 + hierarchy.config.l1d.hit_latency
                    )
            elif op_type is OpType.DISARM:
                hierarchy.disarm(uop.address, cycle=cycle)
                completion[uop.seq] = cycle + 1
                if hierarchy.config.token_staging_entries:
                    entry.write_latency = 1
                else:
                    entry.write_latency = (
                        1
                        + hierarchy.config.disarm_extra_cycles
                        + hierarchy.config.l1d.hit_latency
                    )
            else:
                completion[uop.seq] = cycle + op_type.base_latency
        except Exception as error:
            if getattr(error, "cycle", False) is None:
                error.cycle = cycle
            raise
