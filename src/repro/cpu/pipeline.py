"""Cycle-level out-of-order core (Table II configuration).

Trace-driven: the core consumes a stream of ``MicroOp``s (from the
workload generator or the runtime lowering), models fetch/dispatch/
issue/execute/commit with the Table II structure sizes, performs memory
accesses against the REST-extended hierarchy at execute, and enforces
the two commit policies:

* **secure mode** — stores (and arm/disarm) commit eagerly as soon as
  they are the oldest instruction; a REST violation detected after that
  point is reported imprecisely (the hierarchy already tags it so);
* **debug mode** — a store-like op at the ROB head may not commit until
  its cache write has completed, which is precisely the mechanism the
  paper identifies as the source of the debug-mode slowdown (ROB blocked
  by stores ~10x more, IQ-full cycles up to 100x for xalanc).

Memory operations execute in program order with respect to each other
(a conservative memory unit): this keeps the architectural token state
exactly sequential, which Table I semantics rely on, while still letting
compute ops reorder freely around them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.modes import Mode
from repro.cpu.bpred import BranchPredictor
from repro.cpu.iq import IqSlot, IssueQueue
from repro.cpu.isa import MicroOp, OpType
from repro.cpu.lsq import LoadStoreQueue, SqEntryKind
from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.cpu.stats import CoreStats
from repro.obs.tracer import NULL_TRACER

_ZEROS = bytes(64)

_SQ_KIND = {
    OpType.STORE: SqEntryKind.STORE,
    OpType.ARM: SqEntryKind.ARM,
    OpType.DISARM: SqEntryKind.DISARM,
}


@dataclass(frozen=True)
class CoreConfig:
    """Core structure sizes and widths (defaults: Table II)."""

    fetch_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    rob_entries: int = 192
    iq_entries: int = 64
    lq_entries: int = 32
    sq_entries: int = 32
    fetch_buffer_entries: int = 16
    mispredict_penalty: int = 12
    #: Ablation: the paper's rejected simple design that serialises
    #: arm/disarm execution (each must be the only in-flight
    #: instruction) instead of modifying the LSQ matching logic.
    serialize_rest_ops: bool = False

    @classmethod
    def in_order(cls) -> "CoreConfig":
        """A 1-wide, tiny-window configuration approximating an in-order
        core (the paper ran the Figure 3 breakdown on an in-order core).
        """
        return cls(
            fetch_width=1,
            dispatch_width=1,
            issue_width=1,
            commit_width=1,
            rob_entries=8,
            iq_entries=2,
            lq_entries=4,
            sq_entries=4,
            fetch_buffer_entries=4,
            mispredict_penalty=6,
        )


class OutOfOrderCore:
    """Trace-driven cycle-level OoO core bound to a memory hierarchy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        config: Optional[CoreConfig] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config or CoreConfig()
        self.rob = ReorderBuffer(self.config.rob_entries)
        self.iq = IssueQueue(self.config.iq_entries)
        self.lsq = LoadStoreQueue(
            self.config.lq_entries,
            self.config.sq_entries,
            line_size=hierarchy.line_size,
        )
        self.bpred = BranchPredictor()
        self.stats = CoreStats()
        #: Observability hook (see :mod:`repro.obs.tracer`); the null
        #: tracer costs one hoisted-bool test per emit site.
        self.tracer = NULL_TRACER
        self._cycle = 0

    @property
    def mode(self) -> Mode:
        return self.hierarchy.mode

    def run(
        self, uops: Iterable[MicroOp], max_cycles: Optional[int] = None
    ) -> CoreStats:
        """Run the trace to completion; returns the collected stats.

        REST exceptions raised at execute propagate to the caller with
        the faulting cycle stamped on them; the stats object reflects
        progress up to the fault.  Uses the event-driven fast-forward
        (see :meth:`run_stepwise`) — the stats are identical to a
        cycle-by-cycle run, only wall-clock time differs.
        """
        for _ in self.run_stepwise(
            uops, max_cycles=max_cycles, fast_forward=True
        ):
            pass
        return self.stats

    def run_stepwise(
        self,
        uops: Iterable[MicroOp],
        max_cycles: Optional[int] = None,
        fast_forward: bool = False,
    ):
        """Generator variant of :meth:`run`: yields after every cycle.

        Lets an SMP executor interleave several cores cycle-by-cycle
        over a coherent memory system (see :mod:`repro.cpu.smp`).

        With ``fast_forward=True`` the loop skips cycles in which no
        stage can make progress (nothing commits, issues, dispatches, or
        fetches), jumping directly to the earliest cycle at which a
        completion/write/fetch-stall timer fires and bulk-charging the
        per-cycle stall counters for the skipped span.  All stats are
        byte-identical to the cycle-by-cycle walk; only the *yield*
        cadence changes (skipped cycles are not yielded), which is why
        it is opt-in and off for SMP interleaving.
        """
        config = self.config
        stats = self.stats
        rob = self.rob
        iq = self.iq
        lsq = self.lsq
        hierarchy = self.hierarchy
        mode_debug = self.mode is Mode.DEBUG

        # The per-cycle loop dominates simulation wall-clock, so the
        # structure sizes, queue internals, and bound methods used every
        # cycle are hoisted into locals here (a local load is several
        # times cheaper than attribute traversal in CPython).
        commit_width = config.commit_width
        issue_width = config.issue_width
        dispatch_width = config.dispatch_width
        fetch_width = config.fetch_width
        fetch_buffer_entries = config.fetch_buffer_entries
        mispredict_penalty = config.mispredict_penalty
        serialize_rest = config.serialize_rest_ops
        rob_capacity = rob.capacity
        iq_capacity = iq.capacity
        lq_cap = lsq.lq_entries
        sq_cap = lsq.sq_entries
        rob_entries = rob._entries
        lq = lsq._lq
        sq = lsq._sq
        op_counts = stats.op_counts
        op_counts_get = op_counts.get
        fetch_line_fn = hierarchy.fetch_line
        predict_and_update = self.bpred.predict_and_update
        token_width = hierarchy.detector.token.width
        execute = self._execute
        retire_load = lsq.retire_load
        retire_store_like = lsq.retire_store_like
        dispatch_store_like = lsq.dispatch_store_like
        ot_load = OpType.LOAD
        ot_store = OpType.STORE
        ot_arm = OpType.ARM
        ot_disarm = OpType.DISARM
        tracer = self.tracer
        trace_on = tracer.enabled
        emit = tracer.emit
        #: (cause, pc) -> cycles, mirroring every aggregate stall
        #: counter charge exactly (including fast-forwarded spans); the
        #: ``finally`` block emits it as compact ``pcstall`` summary
        #: events so per-PC attribution survives ring wraparound of the
        #: per-uop stream.  Only touched when tracing is on.
        pc_stalls: Dict[Tuple[str, int], int] = {}
        pc_stalls_get = pc_stalls.get
        #: Fetch-order sequence stamp for traced fetch/squash events.
        #: The fetch buffer is a FIFO and there is no wrong-path fetch,
        #: so fetch order equals dispatch order: this counter previews
        #: the ``seq`` dispatch will assign the same uop.
        fetch_seq = 0

        trace = iter(uops)
        trace_next = trace.__next__
        fetch_buffer: Deque[MicroOp] = deque()
        fb_append = fetch_buffer.append
        fb_popleft = fetch_buffer.popleft
        trace_done = False
        fetch_stall_until = 0
        seq = 0
        cycle = self._cycle
        start_cycle = cycle
        #: seq -> cycle its result is available; -1 while in flight.
        #: Dense list indexed by seq (seqs are assigned contiguously at
        #: dispatch), replacing the dict of the original implementation.
        completion: List[int] = []
        completion_append = completion.append
        #: program-order queue of unexecuted memory ops.
        mem_order: Deque[int] = deque()
        mem_append = mem_order.append
        mem_popleft = mem_order.popleft
        #: serialize_rest_ops ablation: arm/disarm ops still in flight.
        rest_in_flight = 0
        #: instruction-fetch line tracking for the L1-I.
        last_fetch_line = -1
        line_mask = ~(hierarchy.line_size - 1)
        cycle_limit = (
            start_cycle + max_cycles if max_cycles is not None else None
        )

        try:
            while not trace_done or fetch_buffer or rob_entries:
                cycle += 1
                self._cycle = cycle
                if trace_on:
                    # Cycle stamp for components without a cycle arg of
                    # their own (cache installs, detector scans).
                    tracer.now = cycle
                if cycle_limit is not None and cycle > cycle_limit:
                    raise RuntimeError("simulation exceeded max_cycles")

                # ---- commit (in order, up to commit width) ----
                committed_now = 0
                head_store_blocked = False
                while committed_now < commit_width and rob_entries:
                    head = rob_entries[0]
                    head_uop = head.uop
                    head_seq = head_uop.seq
                    op_type = head_uop.op
                    store_like = op_type.is_store_like
                    done_cycle = completion[head_seq]
                    blocked = done_cycle < 0 or done_cycle > cycle
                    if not blocked and mode_debug and store_like:
                        # Debug mode: the cache write starts when the
                        # store retires; hold the head until it is done.
                        if head.write_done_cycle < 0:
                            head.write_done_cycle = (
                                cycle + head.write_latency
                            )
                        blocked = head.write_done_cycle > cycle
                    if blocked:
                        if store_like:
                            head_store_blocked = True
                            rob.blocked_by_store_cycles += 1
                            stats.rob_blocked_by_store_cycles += 1
                            if trace_on:
                                key = ("rob_store", head_uop.pc)
                                pc_stalls[key] = (
                                    pc_stalls_get(key, 0) + 1
                                )
                        break
                    rob_entries.popleft()
                    if op_type is ot_load:
                        retire_load(head_seq)
                    elif store_like:
                        retire_store_like(head_seq)
                        if serialize_rest and op_type is not ot_store:
                            rest_in_flight -= 1
                    # ``_value_`` is the plain instance attribute behind
                    # the (slow) ``Enum.value`` descriptor.
                    key = op_type._value_
                    op_counts[key] = op_counts_get(key, 0) + 1
                    committed_now += 1
                    if trace_on:
                        emit(
                            "commit",
                            cycle,
                            seq=head_seq,
                            pc=head_uop.pc,
                            sid=head_uop.sid,
                            op=key,
                            store_done=(
                                head.write_done_cycle
                                if head.write_done_cycle > 0
                                else 0
                            ),
                        )
                if committed_now:
                    stats.committed += committed_now
                    stats.commit_active_cycles += 1

                # ---- issue (up to issue width, oldest-first select) ----
                iq_slots = iq._slots
                issued = 0
                if iq_slots:
                    mem_head = mem_order[0] if mem_order else -1
                    # ``remaining`` is built lazily: on cycles where
                    # nothing issues (the common case under a long-latency
                    # miss) the slot list is left untouched instead of
                    # being rebuilt element by element.
                    remaining = None
                    n = len(iq_slots)
                    i = 0
                    while i < n:
                        if issued >= issue_width:
                            break
                        slot = iq_slots[i]
                        uop = slot.entry.uop
                        ready = True
                        for distance in uop.deps:
                            producer_seq = uop.seq - distance
                            if producer_seq >= 0:
                                done = completion[producer_seq]
                                if done < 0 or done > cycle:
                                    ready = False
                                    break
                        if ready and not uop.op.is_memory:
                            # Non-memory fast path: _execute would only
                            # write the base-latency completion.
                            if remaining is None:
                                remaining = iq_slots[:i]
                            completion[uop.seq] = (
                                cycle + uop.op.base_latency
                            )
                            issued += 1
                            if trace_on:
                                emit(
                                    "issue", cycle, seq=uop.seq, pc=uop.pc
                                )
                                emit(
                                    "complete",
                                    completion[uop.seq],
                                    seq=uop.seq,
                                    pc=uop.pc,
                                )
                        elif ready and uop.seq == mem_head:
                            if remaining is None:
                                remaining = iq_slots[:i]
                            if trace_on:
                                dram_before = stats.dram_stall_cycles
                            execute(uop, slot.entry, cycle, completion, lsq)
                            mem_popleft()
                            mem_head = mem_order[0] if mem_order else -1
                            issued += 1
                            if trace_on:
                                emit(
                                    "issue", cycle, seq=uop.seq, pc=uop.pc
                                )
                                emit(
                                    "complete",
                                    completion[uop.seq],
                                    seq=uop.seq,
                                    pc=uop.pc,
                                )
                                dram_added = (
                                    stats.dram_stall_cycles - dram_before
                                )
                                if dram_added:
                                    key = ("dram", uop.pc)
                                    pc_stalls[key] = (
                                        pc_stalls_get(key, 0) + dram_added
                                    )
                        elif remaining is not None:
                            remaining.append(slot)
                        i += 1
                    if remaining is not None:
                        if i < n:
                            remaining.extend(iq_slots[i:])
                        iq._slots = remaining
                        iq_slots = remaining

                # ---- dispatch (fetch buffer -> ROB/IQ/LSQ) ----
                dispatched = 0
                blocked_reason = None
                while dispatched < dispatch_width and fetch_buffer:
                    uop = fetch_buffer[0]
                    if serialize_rest and rest_in_flight:
                        break  # machine drains before anything follows
                    if len(rob_entries) >= rob_capacity:
                        blocked_reason = "rob"
                        break
                    if len(iq_slots) >= iq_capacity:
                        blocked_reason = "iq"
                        break
                    op_type = uop.op
                    if serialize_rest and (
                        op_type is ot_arm or op_type is ot_disarm
                    ):
                        # Rejected design (paper §III-B): an arm/disarm
                        # must be the only in-flight instruction.
                        if rob_entries:
                            break
                        fb_popleft()
                        uop.seq = seq
                        completion_append(-1)
                        seq += 1
                        entry = rob.push(uop)
                        iq.push(entry, cycle)
                        dispatch_store_like(
                            uop.seq,
                            _SQ_KIND[op_type],
                            uop.address,
                            token_width,
                        )
                        mem_append(uop.seq)
                        rest_in_flight += 1
                        dispatched += 1
                        if trace_on:
                            emit(
                                "dispatch",
                                cycle,
                                seq=uop.seq,
                                pc=uop.pc,
                                sid=uop.sid,
                                op=op_type._value_,
                            )
                        break  # nothing may follow it this cycle
                    if op_type is ot_load:
                        if len(lq) >= lq_cap:
                            blocked_reason = "lq"
                            break
                        store_like = False
                    else:
                        store_like = op_type.is_store_like
                        if store_like and len(sq) >= sq_cap:
                            blocked_reason = "sq"
                            break
                    fb_popleft()
                    uop.seq = seq
                    completion_append(-1)
                    seq += 1
                    # Inlined rob.push / iq.push (capacity pre-checked
                    # above); max-occupancy bookkeeping preserved.
                    entry = RobEntry(uop)
                    rob_entries.append(entry)
                    if len(rob_entries) > rob.max_occupancy:
                        rob.max_occupancy = len(rob_entries)
                    iq_slots.append(IqSlot(entry, cycle))
                    if len(iq_slots) > iq.max_occupancy:
                        iq.max_occupancy = len(iq_slots)
                    if trace_on:
                        emit(
                            "dispatch",
                            cycle,
                            seq=uop.seq,
                            pc=uop.pc,
                            sid=uop.sid,
                            op=op_type._value_,
                        )
                    if op_type is ot_load:
                        lq.append(uop.seq)
                        mem_append(uop.seq)
                    elif store_like:
                        if op_type is ot_store:
                            entry_size = uop.size or 8
                        else:
                            # Arm/disarm cover a whole token slot.
                            entry_size = token_width
                        dispatch_store_like(
                            uop.seq,
                            _SQ_KIND[op_type],
                            uop.address,
                            entry_size,
                        )
                        mem_append(uop.seq)
                    dispatched += 1
                if blocked_reason is not None:
                    if blocked_reason == "rob":
                        rob.full_cycles += 1
                        stats.rob_full_cycles += 1
                    elif blocked_reason == "iq":
                        iq.full_cycles += 1
                        stats.iq_full_cycles += 1
                    elif blocked_reason == "lq":
                        lsq.lq_full_cycles += 1
                        stats.lq_full_cycles += 1
                    else:
                        lsq.sq_full_cycles += 1
                        stats.sq_full_cycles += 1
                    if trace_on:
                        # A structure-full stall is blamed on the ROB
                        # head: that is the instruction the backend is
                        # waiting on, not the one that failed to enter.
                        key = (
                            blocked_reason,
                            rob_entries[0].uop.pc
                            if rob_entries
                            else fetch_buffer[0].pc,
                        )
                        pc_stalls[key] = pc_stalls_get(key, 0) + 1

                # ---- fetch (trace -> fetch buffer) ----
                fetch_attempted = False
                if cycle >= fetch_stall_until and not trace_done:
                    fetched = 0
                    fb_len = len(fetch_buffer)
                    while (
                        fetched < fetch_width
                        and fb_len < fetch_buffer_entries
                    ):
                        fetch_attempted = True
                        try:
                            uop = trace_next()
                        except StopIteration:
                            trace_done = True
                            break
                        fetch_line = uop.pc & line_mask
                        if fetch_line != last_fetch_line:
                            last_fetch_line = fetch_line
                            stall = fetch_line_fn(uop.pc)
                            if stall:
                                stats.icache_stall_cycles += stall
                                fetch_stall_until = cycle + stall
                                fb_append(uop)
                                fetched += 1
                                if trace_on:
                                    emit(
                                        "fetch",
                                        cycle,
                                        seq=fetch_seq,
                                        pc=uop.pc,
                                        sid=uop.sid,
                                        op=uop.op._value_,
                                        icache_stall=stall,
                                    )
                                    fetch_seq += 1
                                    key = ("icache", uop.pc)
                                    pc_stalls[key] = (
                                        pc_stalls_get(key, 0) + stall
                                    )
                                break
                        fb_append(uop)
                        fetched += 1
                        fb_len += 1
                        if trace_on:
                            emit(
                                "fetch",
                                cycle,
                                seq=fetch_seq,
                                pc=uop.pc,
                                sid=uop.sid,
                                op=uop.op._value_,
                            )
                            fetch_seq += 1
                        uop_op = uop.op
                        if uop_op.is_control and uop.taken is not None:
                            if not predict_and_update(uop.pc, uop.taken):
                                stats.branch_mispredicts += 1
                                stats.mispredict_stall_cycles += (
                                    mispredict_penalty
                                )
                                fetch_stall_until = (
                                    cycle + mispredict_penalty
                                )
                                if trace_on:
                                    emit(
                                        "squash",
                                        cycle,
                                        seq=fetch_seq - 1,
                                        pc=uop.pc,
                                        penalty=mispredict_penalty,
                                    )
                                    key = ("mispredict", uop.pc)
                                    pc_stalls[key] = (
                                        pc_stalls_get(key, 0)
                                        + mispredict_penalty
                                    )
                                break
                    if fetched:
                        stats.fetched += fetched

                # ---- event-driven fast-forward ----
                if fast_forward and not (
                    committed_now or issued or dispatched or fetch_attempted
                ):
                    # No stage made progress, so the machine state is
                    # frozen except for timers keyed on ``cycle``: every
                    # intervening cycle would repeat this one exactly.
                    # Jump to the earliest cycle a timer fires, charging
                    # the skipped span to the same stall counters this
                    # cycle charged.  The hierarchy holds no cycle-
                    # decaying state (DRAM row/MSHR/write-buffer effects
                    # are modelled at access time), so these timers are
                    # the only wake-up sources.
                    target = None
                    if rob_entries:
                        head = rob_entries[0]
                        done_cycle = completion[head.uop.seq]
                        if done_cycle > cycle:
                            target = done_cycle
                        elif done_cycle >= 0:
                            # Executed but held by the debug-mode write
                            # gate (the only other way commit blocks).
                            if head.write_done_cycle > cycle:
                                target = head.write_done_cycle
                    if iq_slots:
                        mem_head = mem_order[0] if mem_order else -1
                        for slot in iq_slots:
                            uop = slot.entry.uop
                            if uop.op.is_memory and uop.seq != mem_head:
                                continue  # gate is static while frozen
                            ready_at = 0
                            for distance in uop.deps:
                                producer_seq = uop.seq - distance
                                if producer_seq >= 0:
                                    done = completion[producer_seq]
                                    if done < 0:
                                        ready_at = -1
                                        break
                                    if done > ready_at:
                                        ready_at = done
                            if ready_at > cycle and (
                                target is None or ready_at < target
                            ):
                                target = ready_at
                    if (
                        not trace_done
                        and fetch_stall_until > cycle
                        and len(fetch_buffer) < fetch_buffer_entries
                        and (target is None or fetch_stall_until < target)
                    ):
                        target = fetch_stall_until
                    if target is not None and target > cycle + 1:
                        if (
                            cycle_limit is not None
                            and target > cycle_limit + 1
                        ):
                            target = cycle_limit + 1
                        skipped = target - cycle - 1
                        if skipped > 0:
                            # The frozen machine repeats this cycle's
                            # stall causes verbatim, so the per-PC blame
                            # below matches what the per-cycle sites
                            # charged: the ROB head cannot have moved
                            # (nothing committed this cycle).
                            if head_store_blocked:
                                rob.blocked_by_store_cycles += skipped
                                stats.rob_blocked_by_store_cycles += skipped
                                if trace_on:
                                    key = (
                                        "rob_store",
                                        rob_entries[0].uop.pc,
                                    )
                                    pc_stalls[key] = (
                                        pc_stalls_get(key, 0) + skipped
                                    )
                            if blocked_reason is not None:
                                if blocked_reason == "rob":
                                    rob.full_cycles += skipped
                                    stats.rob_full_cycles += skipped
                                elif blocked_reason == "iq":
                                    iq.full_cycles += skipped
                                    stats.iq_full_cycles += skipped
                                elif blocked_reason == "lq":
                                    lsq.lq_full_cycles += skipped
                                    stats.lq_full_cycles += skipped
                                else:
                                    lsq.sq_full_cycles += skipped
                                    stats.sq_full_cycles += skipped
                                if trace_on:
                                    key = (
                                        blocked_reason,
                                        rob_entries[0].uop.pc
                                        if rob_entries
                                        else fetch_buffer[0].pc,
                                    )
                                    pc_stalls[key] = (
                                        pc_stalls_get(key, 0) + skipped
                                    )
                            cycle = target - 1

                yield cycle
        finally:
            stats.cycles = cycle
            stats.lsq_forwards = lsq.forwards
            if trace_on and pc_stalls:
                # Compact per-(cause, pc) stall summaries.  Emitted at
                # the end of the run so they survive ring wraparound of
                # the per-uop stream; per-cause sums equal the raw
                # aggregate counters exactly, which the trace-diff
                # profiler's apportionment relies on (INTERNALS §13).
                for cause, pc in sorted(pc_stalls):
                    emit(
                        "pcstall",
                        cycle,
                        cause=cause,
                        pc=pc,
                        cycles=pc_stalls[(cause, pc)],
                    )

    def run_attributed(
        self,
        uops: Sequence[MicroOp],
        boundaries: Sequence[int],
        max_cycles: Optional[int] = None,
    ):
        """Run the trace, attributing cycles to committed-uop spans.

        ``boundaries`` is an ascending list of cumulative committed-uop
        counts (block ends, see :func:`repro.cpu.blocks.block_boundaries`).
        Returns ``(stats, costs)`` where ``costs[i]`` is the number of
        cycles between the commit of boundary ``i-1`` and boundary
        ``i``.  Commits happen only on stepped cycles (fast-forwarded
        spans by definition make no progress), so watching
        ``stats.committed`` cross each boundary is exact.  Several
        boundaries crossed in one cycle leave the later spans at zero
        cost — the shared cycle is charged to the first span — so the
        costs always sum to the total cycles consumed.

        This is the fast tier's characterization hook: the simulated
        state (caches, predictor, stats) is identical to a plain
        :meth:`run` of the same uops.
        """
        stats = self.stats
        costs = [0] * len(boundaries)
        index = 0
        last_cycle = self._cycle
        n_bounds = len(boundaries)
        for _ in self.run_stepwise(
            uops, max_cycles=max_cycles, fast_forward=True
        ):
            committed = stats.committed
            while index < n_bounds and committed >= boundaries[index]:
                cycle = self._cycle
                costs[index] = cycle - last_cycle
                last_cycle = cycle
                index += 1
        while index < n_bounds:
            costs[index] = self._cycle - last_cycle
            last_cycle = self._cycle
            index += 1
        return stats, costs

    def _execute(
        self,
        uop: MicroOp,
        entry,
        cycle: int,
        completion: List[int],
        lsq: LoadStoreQueue,
    ) -> None:
        """Execute one op; memory ops touch the hierarchy here."""
        op_type = uop.op
        hierarchy = self.hierarchy
        stats = self.stats
        try:
            if op_type is OpType.LOAD:
                forwarded = lsq.search_for_load(
                    uop.seq, uop.address, uop.size or 8
                )
                if forwarded is not None:
                    latency = 1
                else:
                    _, result = hierarchy.read(
                        uop.address, uop.size or 8, cycle=cycle
                    )
                    latency = result.latency
                    if result.went_to_memory:
                        stats.dram_stall_cycles += latency
                completion[uop.seq] = cycle + max(1, latency)
            elif op_type is OpType.STORE:
                lsq.check_store(uop.seq, uop.address, uop.size or 8)
                result = hierarchy.write(
                    uop.address, _ZEROS[: uop.size or 8], cycle=cycle
                )
                if result.went_to_memory:
                    stats.dram_stall_cycles += result.latency
                completion[uop.seq] = cycle + 1
                # The execute-time access brought the line into L1
                # (write-allocate), so the retirement-time write that
                # debug mode waits on is an L1 hit: the request/ack
                # round trip costs two traversals of the hit path.
                entry.write_latency = 2 * hierarchy.config.l1d.hit_latency
            elif op_type is OpType.ARM:
                result = hierarchy.arm(uop.address, cycle=cycle)
                if result.went_to_memory:
                    stats.dram_stall_cycles += result.latency
                completion[uop.seq] = cycle + 1
                if hierarchy.config.token_staging_entries:
                    # §VIII extension: the dedicated REST-line staging
                    # structure acks token writes immediately.
                    entry.write_latency = 1
                else:
                    # Arm hits complete in 1 cycle; the commit-time ack
                    # still takes the L1 round trip.
                    entry.write_latency = (
                        1 + hierarchy.config.l1d.hit_latency
                    )
            elif op_type is OpType.DISARM:
                result = hierarchy.disarm(uop.address, cycle=cycle)
                if result.went_to_memory:
                    stats.dram_stall_cycles += result.latency
                completion[uop.seq] = cycle + 1
                if hierarchy.config.token_staging_entries:
                    entry.write_latency = 1
                else:
                    entry.write_latency = (
                        1
                        + hierarchy.config.disarm_extra_cycles
                        + hierarchy.config.l1d.hit_latency
                    )
            else:
                completion[uop.seq] = cycle + op_type.base_latency
        except Exception as error:
            if getattr(error, "cycle", False) is None:
                error.cycle = cycle
            raise
