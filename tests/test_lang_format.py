"""Tests for the Mini-C pretty-printer, including round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.defenses import PlainDefense
from repro.lang import Interpreter, heartbleed_program, sum_array_program
from repro.lang.ast import (
    ArrayDecl,
    Assign,
    BinOp,
    Call,
    Const,
    For,
    Function,
    If,
    Load,
    Program,
    Return,
    Store,
    Var,
    While,
)
from repro.lang.format import format_expr, format_program
from repro.lang.parser import parse
from repro.lang.programs import branchy_program, use_after_free_program
from repro.runtime import Machine


def run(program):
    return Interpreter(program, PlainDefense(Machine())).run()


class TestFormatting:
    def test_simple_function(self):
        program = Program([Function("main", body=[Return(Const(7))])])
        text = format_program(program)
        assert "int main() {" in text
        assert "return 7;" in text

    def test_arrays_declared_first(self):
        program = Program([
            Function(
                "main",
                arrays=(ArrayDecl("buf", 4),),
                body=[Return(Load(Var("buf"), Const(0)))],
            )
        ])
        text = format_program(program)
        assert "int buf[4];" in text
        assert "buf[0]" in text

    def test_integer_division_renders_as_slash(self):
        assert format_expr(BinOp("//", Const(9), Const(2))) == "(9 / 2)"

    def test_computed_store_base_lowered(self):
        program = Program([
            Function(
                "main",
                body=[
                    Store(BinOp("+", Const(4096), Const(8)), Const(0), Const(1)),
                    Return(Const(0)),
                ],
            )
        ])
        text = format_program(program)
        assert "_t0 = (4096 + 8);" in text
        assert "_t0[0] = 1;" in text

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: sum_array_program(8),
            lambda: heartbleed_program(),
            lambda: use_after_free_program(),
            lambda: branchy_program(),
        ],
        ids=["sum", "heartbleed", "uaf", "branchy"],
    )
    def test_canonical_programs_roundtrip_semantically(self, factory):
        """format -> parse -> run gives the same result as the AST."""
        program = factory()
        reparsed = parse(format_program(program))
        if factory.__name__ == "<lambda>" and program is None:
            pytest.skip()
        try:
            expected = run(program)
        except Exception as error:
            with pytest.raises(type(error)):
                run(reparsed)
            return
        assert run(reparsed) == expected


# ---------------------------------------------------------------------------
# Property: random parser-shaped programs survive format -> parse.
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "x", "y"])


def _exprs(depth):
    base = st.one_of(
        st.integers(min_value=0, max_value=999).map(Const),
        _names.map(Var),
    )
    if depth <= 0:
        return base
    sub = _exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(
            st.sampled_from(["+", "-", "*", "<", "==", "!="]), sub, sub
        ).map(lambda t: BinOp(*t)),
        st.tuples(_names, sub).map(lambda t: Load(Var(t[0]), t[1])),
    )


def _statements(depth):
    expr = _exprs(2)
    base = st.one_of(
        st.tuples(_names, expr).map(lambda t: Assign(*t)),
        st.tuples(_names, expr, expr).map(
            lambda t: Store(Var(t[0]), t[1], t[2])
        ),
        expr.map(Return),
    )
    if depth <= 0:
        return base
    sub = st.lists(_statements(depth - 1), min_size=1, max_size=3)
    return st.one_of(
        base,
        st.tuples(expr, sub, sub).map(lambda t: If(t[0], t[1], t[2])),
        st.tuples(_names, expr, expr, sub).map(
            lambda t: For(t[0], t[1], t[2], t[3])
        ),
    )


class TestRoundTripProperty:
    @given(st.lists(_statements(2), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_parse_of_format_is_identity(self, body):
        program = Program([Function("main", body=body)])
        text = format_program(program)
        assert parse(text) == program
