"""Integration tests across subsystem seams: defenses on kernel
hierarchies, narrow tokens on multicore, Mini-C on the fast allocator,
sweeps, and experiment glue."""

import pytest

from repro.cache.coherence import MulticoreHierarchy
from repro.core import (
    Mode,
    PrivilegeLevel,
    RestException,
    Token,
    TokenConfigRegister,
)
from repro.defenses import RestDefense
from repro.harness.configs import DefenseSpec
from repro.harness.sweeps import seed_sweep
from repro.lang import Interpreter, parse
from repro.os import Kernel
from repro.runtime import Machine
from repro.workloads.spec import profile_by_name


class TestDefenseOnKernelHierarchy:
    def test_rest_defense_inside_a_process(self):
        """A process's heap defense works under per-process tokens and
        survives context switches."""
        kernel = Kernel()
        process_a = kernel.spawn()
        machine = Machine(hierarchy=kernel.hierarchy)
        defense = RestDefense(machine, protect_stack=False)
        buffer = defense.malloc(64)
        defense.store(buffer, b"a-data!!")

        kernel.spawn()  # switch away (flush + token swap)
        kernel.switch_to(process_a)  # and back
        assert defense.load(buffer, 8) == b"a-data!!"
        with pytest.raises(RestException):
            defense.load(buffer + 64, 8)  # redzone survives the switches

    def test_foreign_process_cannot_trip_or_read_redzones_as_tokens(self):
        kernel = Kernel()
        process_a = kernel.spawn()
        machine = Machine(hierarchy=kernel.hierarchy)
        defense = RestDefense(machine, protect_stack=False)
        buffer = defense.malloc(64)
        kernel.spawn()  # now B's token is installed
        # B scans A's redzone region: the bytes are A's token —
        # meaningless under B's register, no exception, no B-token.
        data, _ = kernel.hierarchy.read(buffer + 64, 64)
        assert data != kernel.hierarchy.detector.token.value


class TestNarrowTokensOnMulticore:
    @pytest.mark.parametrize("width", [16, 32])
    def test_cross_core_detection_narrow(self, width):
        register = TokenConfigRegister(Token.random(width, seed=4))
        smp = MulticoreHierarchy(cores=2, token_config=register)
        smp.arm(0, 0x1000 + width)  # a middle slot of the line
        with pytest.raises(RestException):
            smp.read(1, 0x1000 + width, 8)
        # Sibling slots in the same line stay accessible from core 1.
        smp.read(1, 0x1000, 8)
        smp.disarm(1, 0x1000 + width)
        smp.read(0, 0x1000 + width, 8)


class TestMiniCOnVariants:
    SOURCE = """
    int main() {
        int p = malloc(256);
        for (i = 0; i < 32; i++) { p[i] = i; }
        int total = 0;
        for (i = 0; i < 32; i++) { total = total + p[i]; }
        free(p);
        return total;
    }
    """

    def test_fast_allocator(self):
        defense = RestDefense(Machine(), allocator="fast")
        assert Interpreter(parse(self.SOURCE), defense).run() == sum(
            range(32)
        )

    def test_narrow_token_machine(self):
        register = TokenConfigRegister(Token.random(16, seed=6))
        from repro.cache.hierarchy import MemoryHierarchy

        machine = Machine(hierarchy=MemoryHierarchy(token_config=register))
        defense = RestDefense(machine)
        assert Interpreter(parse(self.SOURCE), defense).run() == sum(
            range(32)
        )

    def test_debug_mode_machine(self):
        register = TokenConfigRegister(
            Token.random(64, seed=6), mode=Mode.DEBUG
        )
        from repro.cache.hierarchy import MemoryHierarchy

        machine = Machine(hierarchy=MemoryHierarchy(token_config=register))
        defense = RestDefense(machine)
        bad = parse(
            "int main() { int p = malloc(64); return p[8]; }"
        )
        with pytest.raises(RestException) as info:
            Interpreter(bad, defense).run()
        assert info.value.precise  # debug mode: precise report


class TestSweepGlue:
    def test_seed_sweep_statistics(self):
        sweep = seed_sweep(
            [profile_by_name("sjeng")],
            [DefenseSpec.rest("Secure Full")],
            seeds=(1, 2, 3),
            scale=0.05,
        )
        result = sweep["Secure Full"]
        assert len(result.samples) == 3
        assert result.spread >= 0
        assert result.stdev >= 0
        assert min(result.samples) <= result.mean <= max(result.samples)

    def test_seed_sweep_requires_seeds(self):
        with pytest.raises(ValueError):
            seed_sweep(
                [profile_by_name("sjeng")],
                [DefenseSpec.rest("Secure Full")],
                seeds=(),
            )


class TestTokenRotationEndToEnd:
    def test_rotation_with_writeback_rekeys_protection(self):
        """Rotation at 'reboot': old tokens must be re-armed under the
        new value before protection resumes (heap-only REST re-arms on
        the next allocation round, no recompilation)."""
        machine = Machine()
        defense = RestDefense(machine, protect_stack=False)
        old_buffer = defense.malloc(64)
        register = machine.hierarchy.token_config
        machine.hierarchy.writeback_all()
        register.rotate(PrivilegeLevel.SUPERVISOR, seed=77)
        # Pre-rotation redzones are stale (old token bytes): the new
        # detector no longer recognises them...
        machine.load(old_buffer + 64, 8)
        # ...but fresh allocations are protected under the new token.
        new_buffer = defense.malloc(64)
        with pytest.raises(RestException):
            machine.load(new_buffer + 64, 8)
