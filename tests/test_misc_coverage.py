"""Final targeted coverage: prefetcher behaviour, allocator geometry,
spec factories, and detector accounting."""

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.core import Token, TokenConfigRegister, TokenDetector
from repro.core.modes import Mode
from repro.harness.configs import DefenseSpec, figure7_specs, figure8_specs
from repro.runtime import AsanAllocator, Machine, RestAllocator


class TestInstructionPrefetcher:
    def test_sequential_code_streams_after_first_miss(self):
        h = MemoryHierarchy()
        stalls = [h.fetch_line(0x400000 + 64 * i) for i in range(16)]
        assert stalls[0] > 0  # cold
        assert all(s == 0 for s in stalls[1:])  # next-line prefetch

    def test_random_jumps_miss(self):
        h = MemoryHierarchy()
        stalls = [
            h.fetch_line(0x400000 + 8192 * i) for i in range(8)
        ]
        assert all(s > 0 for s in stalls)

    def test_prefetch_does_not_stall_fetch(self):
        h = MemoryHierarchy()
        h.fetch_line(0x400000)
        before = h.l1i.stats.misses
        assert h.fetch_line(0x400040) == 0  # hit on prefetched line
        assert h.l1i.stats.misses == before


class TestAllocatorGeometry:
    def test_asan_redzone_monotonic_in_size(self):
        alloc = AsanAllocator(Machine())
        sizes = [16, 256, 4096, 65536, 10**6]
        redzones = [alloc.redzone_size(s) for s in sizes]
        assert redzones == sorted(redzones)
        assert redzones[0] == alloc.min_redzone
        assert redzones[-1] == alloc.max_redzone

    def test_rest_redzone_tokens_monotonic(self):
        alloc = RestAllocator(Machine())
        sizes = [16, 1024, 16384, 10**6]
        tokens = [alloc.redzone_tokens(s) for s in sizes]
        assert tokens == sorted(tokens)
        assert tokens[0] == 1 and tokens[-1] <= 8

    def test_rest_reserved_geometry_accounts(self):
        machine = Machine()
        alloc = RestAllocator(machine)
        ptr = alloc.malloc(100)
        chunk = alloc._live[ptr]
        width = machine.token_width
        assert chunk.payload % width == 0
        assert (chunk.total - alloc._payload_span(chunk)) % (2 * width) == 0


class TestSpecFactories:
    def test_figure7_modes_and_scopes(self):
        by_name = {s.name: s for s in figure7_specs()}
        assert by_name["Debug Full"].mode is Mode.DEBUG
        assert by_name["Secure Heap"].protect_stack is False
        assert by_name["PerfectHW Full"].perfect_hw is True
        assert by_name["ASan"].defense == "asan"

    def test_figure8_widths(self):
        widths = {s.token_width for s in figure8_specs()}
        assert widths == {16, 32, 64}
        assert all(s.mode is Mode.SECURE for s in figure8_specs())

    def test_plain_factory(self):
        plain = DefenseSpec.plain()
        assert plain.defense == "plain" and not plain.protect_stack


class TestDetectorAccounting:
    def test_narrow_token_line_image(self):
        register = TokenConfigRegister(Token.random(16, seed=8))
        detector = TokenDetector(register)
        image = detector.token_line_image()
        assert len(image) == 64
        assert detector.scan_line(image) == 0b1111

    def test_beat_accounting_scales_with_slots(self):
        register = TokenConfigRegister(Token.random(16, seed=8))
        detector = TokenDetector(register)
        detector.scan_line(b"\x00" * 64)
        # Four slots, each early-outs on its first beat.
        assert detector.beat_compares == 4

    def test_slots_per_line_by_width(self):
        for width, slots in ((64, 1), (32, 2), (16, 4)):
            register = TokenConfigRegister(Token.random(width, seed=8))
            assert TokenDetector(register).slots_per_line == slots
