"""Tests for the binary trace encoding (arm/disarm get real opcodes)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.encoding import (
    RECORD_SIZE,
    EncodingError,
    decode_trace,
    decode_uop,
    encode_trace,
    encode_uop,
)
from repro.cpu.isa import MicroOp, OpType


def roundtrip(uop):
    return decode_uop(encode_uop(uop))


class TestRecordRoundtrip:
    def test_alu(self):
        out = roundtrip(MicroOp(OpType.ALU, pc=0x400, deps=(1,)))
        assert out.op is OpType.ALU and out.pc == 0x400 and out.deps == (1,)

    def test_load_with_64bit_address(self):
        uop = MicroOp(OpType.LOAD, address=0x7FFF_F000_0040, size=8, deps=(3, 7))
        out = roundtrip(uop)
        assert out.op is OpType.LOAD
        assert out.address == 0x7FFF_F000_0040
        assert out.size == 8 and out.deps == (3, 7)

    def test_branch_taken_flag(self):
        assert roundtrip(MicroOp(OpType.BRANCH, taken=True)).taken is True
        assert roundtrip(MicroOp(OpType.BRANCH, taken=False)).taken is False
        assert roundtrip(MicroOp(OpType.ALU)).taken is None

    def test_arm_disarm_opcodes(self):
        # 0xAE/0xAF — the xsave/xrstor nod from the paper.
        assert encode_uop(MicroOp(OpType.ARM, address=0x1000))[0] == 0xAE
        assert encode_uop(MicroOp(OpType.DISARM, address=0x1000))[0] == 0xAF

    def test_record_is_fixed_width(self):
        assert len(encode_uop(MicroOp(OpType.NOP))) == RECORD_SIZE == 16

    def test_bad_record_length(self):
        with pytest.raises(EncodingError):
            decode_uop(b"\x00" * 8)

    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode_uop(b"\x77" + b"\x00" * 15)

    def test_dependency_distance_range(self):
        with pytest.raises(EncodingError):
            encode_uop(MicroOp(OpType.ALU, deps=(70_000,)))


class TestTraceRoundtrip:
    def test_header_and_body(self):
        trace = [
            MicroOp(OpType.ARM, address=0x1000),
            MicroOp(OpType.LOAD, address=0x2000, size=4),
            MicroOp(OpType.DISARM, address=0x1000),
        ]
        data = encode_trace(trace)
        out = decode_trace(data)
        assert [u.op for u in out] == [u.op for u in trace]
        assert out[0].address == 0x1000

    def test_empty_trace(self):
        assert decode_trace(encode_trace([])) == []

    def test_bad_magic(self):
        data = bytearray(encode_trace([]))
        data[0] = ord("X")
        with pytest.raises(EncodingError):
            decode_trace(bytes(data))

    def test_truncated_body(self):
        data = encode_trace([MicroOp(OpType.ALU)])
        with pytest.raises(EncodingError):
            decode_trace(data[:-4])

    def test_generated_workload_trace_roundtrips(self):
        from repro.defenses import RestDefense
        from repro.runtime.machine import ExecutionMode, Machine
        from repro.workloads import SyntheticWorkload, profile_by_name

        machine = Machine(mode=ExecutionMode.TRACE)
        SyntheticWorkload(
            profile_by_name("xalancbmk"), RestDefense(machine), scale=0.05
        ).run()
        trace = machine.take_trace()
        out = decode_trace(encode_trace(trace))
        assert len(out) == len(trace)
        for original, decoded in zip(trace, out):
            assert original.op is decoded.op
            if original.op.is_memory:
                assert original.address == decoded.address

    def test_decoded_trace_replays_identically(self):
        """Cycle counts match between original and decoded traces."""
        from repro.cache import MemoryHierarchy
        from repro.cpu import OutOfOrderCore
        from repro.cpu.isa import alu, arm_op, disarm_op, load, store

        trace = []
        for i in range(50):
            trace.append(arm_op(0x10000 + 64 * i))
            trace.append(alu(deps=(1,)))
            trace.append(store(0x20000 + 64 * i, 8))
            trace.append(load(0x20000 + 64 * i, 8, deps=(1,)))
            trace.append(disarm_op(0x10000 + 64 * i))
        decoded = decode_trace(encode_trace(trace))
        original_cycles = OutOfOrderCore(MemoryHierarchy()).run(trace).cycles
        decoded_cycles = OutOfOrderCore(MemoryHierarchy()).run(decoded).cycles
        assert original_cycles == decoded_cycles


class TestEncodingProperties:
    @given(
        st.sampled_from(list(OpType)),
        st.integers(min_value=0, max_value=2**63),
        st.integers(min_value=0, max_value=255),
        st.lists(st.integers(min_value=1, max_value=65535), max_size=2),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_any_op(self, op, payload, size, deps):
        uop = MicroOp(
            op,
            pc=payload if not op.is_memory else 0,
            address=payload if op.is_memory else 0,
            size=size,
            deps=tuple(deps),
        )
        out = roundtrip(uop)
        assert out.op is uop.op
        assert out.size == size
        assert out.deps == tuple(deps)
        if op.is_memory:
            assert out.address == payload
        else:
            assert out.pc == payload
