"""Tests for the defense runtimes (plain / ASan / REST)."""

import pytest

from repro.core import RestException
from repro.cpu import OpType
from repro.defenses import AsanDefense, PlainDefense, RestDefense
from repro.runtime import ExecutionMode, Machine
from repro.runtime.shadow import AsanViolation


class TestPlainDefense:
    def test_no_protection_ops(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        defense = PlainDefense(machine)
        machine.take_trace()
        defense.load(0x1000, 8)
        trace = machine.take_trace()
        assert len(trace) == 1 and trace[0].op is OpType.LOAD

    def test_heap_roundtrip(self):
        defense = PlainDefense(Machine())
        ptr = defense.malloc(64)
        defense.store(ptr, b"plaintxt")
        assert defense.load(ptr, 8) == b"plaintxt"
        defense.free(ptr)

    def test_frames_have_no_redzones(self):
        defense = PlainDefense(Machine())
        frame = defense.function_enter([64])
        assert frame.buffers[0].left_redzone == 0
        defense.function_exit(frame)

    def test_no_recompilation_needed(self):
        assert not PlainDefense(Machine()).requires_recompilation


class TestAsanDefense:
    def test_instrumented_load_shape(self):
        """Each access costs a shadow load + compare + branch + access."""
        machine = Machine(mode=ExecutionMode.TRACE)
        defense = AsanDefense(machine)
        machine.take_trace()
        defense.load(0x5000, 8)
        ops = [u.op for u in machine.take_trace()]
        assert ops == [OpType.LOAD, OpType.ALU, OpType.BRANCH, OpType.LOAD]

    def test_load_of_redzone_raises(self):
        defense = AsanDefense(Machine())
        ptr = defense.malloc(64)
        with pytest.raises(AsanViolation):
            defense.load(ptr + 64, 8)

    def test_store_to_freed_raises(self):
        defense = AsanDefense(Machine())
        ptr = defense.malloc(64)
        defense.free(ptr)
        with pytest.raises(AsanViolation):
            defense.store(ptr, b"x" * 8)

    def test_memcpy_intercept_catches_overread(self):
        defense = AsanDefense(Machine())
        src = defense.malloc(64)
        dst = defense.malloc(4096)
        with pytest.raises(AsanViolation):
            defense.memcpy(dst, src, 1024)

    def test_intercept_can_be_disabled(self):
        defense = AsanDefense(Machine(), intercept_libc=False)
        src = defense.malloc(64)
        dst = defense.malloc(4096)
        defense.memcpy(dst, src, 256)  # silent over-read: libc unchecked

    def test_stack_redzones_poisoned_and_cleaned(self):
        defense = AsanDefense(Machine())
        frame = defense.function_enter([64])
        buffer = frame.buffers[0]
        assert defense.shadow.is_poisoned(buffer.left_redzone_address)
        assert defense.shadow.is_poisoned(buffer.right_redzone_address)
        defense.function_exit(frame)
        assert not defense.shadow.is_poisoned(buffer.left_redzone_address)

    def test_component_toggles(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        defense = AsanDefense(
            machine,
            use_allocator=False,
            protect_stack=False,
            instrument_accesses=False,
            intercept_libc=False,
        )
        machine.take_trace()
        defense.load(0x1000, 8)
        assert len(machine.take_trace()) == 1  # bare load

    def test_requires_recompilation(self):
        assert AsanDefense(Machine()).requires_recompilation


class TestRestDefense:
    def test_accesses_are_bare(self):
        """REST adds zero instrumentation to loads/stores."""
        machine = Machine(mode=ExecutionMode.TRACE)
        defense = RestDefense(machine)
        machine.take_trace()
        defense.load(0x5000, 8)
        defense.store(0x5000, size=8)
        ops = [u.op for u in machine.take_trace()]
        assert ops == [OpType.LOAD, OpType.STORE]

    def test_heap_overflow_detected_in_hardware(self):
        defense = RestDefense(Machine())
        ptr = defense.malloc(64)
        with pytest.raises(RestException):
            defense.load(ptr + 64, 8)

    def test_stack_redzones_armed_and_disarmed(self):
        machine = Machine()
        defense = RestDefense(machine)
        frame = defense.function_enter([64])
        buffer = frame.buffers[0]
        assert machine.hierarchy.is_armed(buffer.left_redzone_address)
        assert machine.hierarchy.is_armed(buffer.right_redzone_address)
        defense.function_exit(frame)
        assert not machine.hierarchy.is_armed(buffer.left_redzone_address)

    def test_heap_only_mode_is_legacy_compatible(self):
        defense = RestDefense(Machine(), protect_stack=False)
        assert not defense.requires_recompilation
        frame = defense.function_enter([64])
        assert frame.buffers[0].left_redzone == 0
        defense.function_exit(frame)

    def test_full_mode_requires_recompilation(self):
        assert RestDefense(Machine(), protect_stack=True).requires_recompilation

    def test_nested_frames(self):
        machine = Machine()
        defense = RestDefense(machine)
        outer = defense.function_enter([64])
        inner = defense.function_enter([32])
        defense.function_exit(inner)
        # Outer frame redzones still in place after inner epilogue.
        assert machine.hierarchy.is_armed(
            outer.buffers[0].left_redzone_address
        )
        defense.function_exit(outer)

    def test_frame_reuse_after_exit(self):
        """Future frames inherit a clean stack (paper Figure 6A)."""
        machine = Machine()
        defense = RestDefense(machine)
        for _ in range(5):
            frame = defense.function_enter([64])
            buffer = frame.buffers[0]
            defense.store(buffer.address, b"bodywork")
            defense.function_exit(frame)

    def test_zero_padding_mitigation(self):
        machine = Machine()
        defense = RestDefense(machine)
        ptr = defense.malloc(40)
        frame = defense.function_enter([40])
        buffer = frame.buffers[0]
        machine.store(buffer.address + 40, b"stale!!!")
        defense.zero_padding(buffer)
        assert machine.load(buffer.address + 40, 8) == b"\x00" * 8
        defense.function_exit(frame)

    def test_memcpy_not_intercepted_yet_safe(self):
        """No interception needed: the hardware catches the sweep."""
        defense = RestDefense(Machine())
        src = defense.malloc(64)
        dst = defense.malloc(4096)
        with pytest.raises(RestException):
            defense.memcpy(dst, src, 1024)
