"""The foundry's geometry model against the real allocators.

``poison_intervals`` is the generator's entire theory of where each
defense placed its redzones; every oracle verdict derives from it.
These tests probe the *actual* defenses byte-by-byte at the model's
predicted boundaries — last valid payload byte, first pad byte, first
and last redzone byte — and require fault/no-fault to match the model
exactly.  A drift in either the allocators or the model fails here
long before it shows up as a matrix misprediction.
"""

import pytest

from repro.core import RestException
from repro.defenses import make_defense
from repro.runtime.shadow import AsanViolation
from repro.foundry.generator import (
    asan_heap_redzone,
    asan_heap_span,
    generate_corpus,
    poison_intervals,
    rest_heap_redzone,
    rest_heap_span,
)
from repro.foundry.primitives import FAMILIES

_VIOLATIONS = (RestException, AsanViolation)

# Sizes crossing the interesting thresholds: sub-granule, granule
# aligned, token aligned, pad-bearing, redzone-doubling (>64 → asan
# redzone grows past its 16-byte floor).
PROBE_SIZES = (8, 13, 48, 64, 72, 100, 150, 197, 256)


def _faults(defense, address, width=1):
    try:
        defense.load(address, width)
    except _VIOLATIONS:
        return True
    return False


def _hits(intervals, offset, width):
    return any(
        offset < end and offset + width > start for start, end in intervals
    )


class TestHeapGeometry:
    @pytest.mark.parametrize("mode", ["none", "asan", "rest", "softrest"])
    @pytest.mark.parametrize("size", PROBE_SIZES)
    def test_boundary_probes_match_model(self, mode, size):
        defense = make_defense(mode)
        base = defense.malloc(size)
        intervals = poison_intervals(mode, "heap", size)
        span = {
            "none": size,
            "asan": asan_heap_span(size),
        }.get(mode, rest_heap_span(size))
        rz = {
            "none": 0,
            "asan": asan_heap_redzone(size),
        }.get(mode, rest_heap_redzone(size))
        probes = [0, size - 1, size, span - 1, span]
        if rz:
            probes += [-1, -rz, span + rz - 1]
        for offset in sorted(set(probes)):
            expected = _hits(intervals, offset, 1)
            actual = _faults(defense, base + offset)
            assert actual == expected, (
                f"{mode} size={size} offset={offset}: "
                f"model says {'fault' if expected else 'clean'}, "
                f"hardware says {'fault' if actual else 'clean'}"
            )

    def test_none_mode_has_no_intervals(self):
        for size in PROBE_SIZES:
            assert poison_intervals("none", "heap", size) == ()
            assert poison_intervals("none", "stack", size) == ()

    def test_rest_heap_leaves_stack_unprotected(self):
        for size in PROBE_SIZES:
            assert poison_intervals("rest-heap", "stack", size) == ()
            assert poison_intervals("rest-heap", "heap", size) == \
                poison_intervals("rest", "heap", size)


class TestStackGeometry:
    @pytest.mark.parametrize("mode", ["asan", "rest", "softrest"])
    @pytest.mark.parametrize("size", (8, 30, 64, 100, 150))
    def test_stack_boundary_probes_match_model(self, mode, size):
        defense = make_defense(mode)
        frame = defense.function_enter([size])
        base = frame.buffers[0].address
        intervals = poison_intervals(mode, "stack", size)
        (lead_start, _), (span, trail_end) = intervals
        probes = sorted(
            {0, size - 1, size, span - 1, span, -1, lead_start, trail_end - 1}
        )
        for offset in probes:
            expected = _hits(intervals, offset, 1)
            actual = _faults(defense, base + offset)
            assert actual == expected, (
                f"{mode} stack size={size} offset={offset}: "
                f"model/hardware disagree"
            )


class TestCorpusShape:
    def test_corpus_spans_all_families(self):
        corpus = generate_corpus(5, 3 * len(FAMILIES))
        by_family = {}
        for case in corpus:
            by_family[case.family] = by_family.get(case.family, 0) + 1
        assert set(by_family) == set(FAMILIES)
        assert all(count == 3 for count in by_family.values())

    def test_family_filter_restricts_corpus(self):
        corpus = generate_corpus(5, 10, families=["parser", "subtoken"])
        assert {c.family for c in corpus} == {"parser", "subtoken"}

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            generate_corpus(5, 4, families=["heap_spray"])
