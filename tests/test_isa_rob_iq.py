"""Tests for the micro-op ISA, reorder buffer and issue queue."""

import pytest

from repro.cpu import IssueQueue, MicroOp, OpType, ReorderBuffer
from repro.cpu.isa import alu, arm_op, branch, disarm_op, load, store


class TestOpTypes:
    def test_memory_classification(self):
        assert OpType.LOAD.is_memory
        assert OpType.STORE.is_memory
        assert OpType.ARM.is_memory
        assert OpType.DISARM.is_memory
        assert not OpType.ALU.is_memory

    def test_store_like_classification(self):
        """Arm/disarm are functionally stores (paper §III-B)."""
        assert OpType.STORE.is_store_like
        assert OpType.ARM.is_store_like
        assert OpType.DISARM.is_store_like
        assert not OpType.LOAD.is_store_like

    def test_control_classification(self):
        assert OpType.BRANCH.is_control
        assert OpType.CALL.is_control
        assert OpType.RET.is_control
        assert not OpType.STORE.is_control

    def test_latencies(self):
        assert OpType.ALU.base_latency == 1
        assert OpType.DIV.base_latency > OpType.MUL.base_latency > 1
        assert OpType.FP.base_latency > OpType.ALU.base_latency

    def test_constructors(self):
        op = load(0x1000, 4, deps=(2,))
        assert op.op is OpType.LOAD and op.size == 4 and op.deps == (2,)
        assert store(0x2000).op is OpType.STORE
        assert arm_op(0x3000).op is OpType.ARM
        assert disarm_op(0x3000).op is OpType.DISARM
        assert branch(True).taken is True
        assert alu().deps == ()

    def test_repr(self):
        assert "0x1000" in repr(load(0x1000))
        assert "taken=True" in repr(branch(True))
        assert "alu" in repr(alu())


class TestReorderBuffer:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        a = rob.push(alu())
        b = rob.push(alu())
        assert rob.head() is a
        assert rob.pop_head() is a
        assert rob.head() is b

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.push(alu())
        rob.push(alu())
        assert rob.full
        with pytest.raises(RuntimeError):
            rob.push(alu())

    def test_flush(self):
        rob = ReorderBuffer(8)
        rob.push(alu())
        rob.flush()
        assert rob.empty

    def test_max_occupancy(self):
        rob = ReorderBuffer(8)
        for _ in range(5):
            rob.push(alu())
        rob.pop_head()
        assert rob.max_occupancy == 5

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)


class TestIssueQueue:
    def _entry(self):
        rob = ReorderBuffer(8)
        return rob.push(alu())

    def test_ready_selection(self):
        iq = IssueQueue(4)
        early = self._entry()
        late = self._entry()
        iq.push(early, ready_cycle=5)
        iq.push(late, ready_cycle=10)
        assert iq.issue_ready(cycle=7, width=4) == [early]
        assert iq.issue_ready(cycle=12, width=4) == [late]

    def test_width_limit_oldest_first(self):
        iq = IssueQueue(8)
        entries = [self._entry() for _ in range(5)]
        for entry in entries:
            iq.push(entry, ready_cycle=0)
        issued = iq.issue_ready(cycle=1, width=2)
        assert issued == entries[:2]
        assert len(iq) == 3

    def test_capacity(self):
        iq = IssueQueue(1)
        iq.push(self._entry(), 0)
        assert iq.full
        with pytest.raises(RuntimeError):
            iq.push(self._entry(), 0)

    def test_flush(self):
        iq = IssueQueue(4)
        iq.push(self._entry(), 0)
        iq.flush()
        assert len(iq) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            IssueQueue(0)
