"""Tests for JSON persistence and the gem5-style stats dump."""

import json

import pytest

from repro.harness.configs import DefenseSpec, SimulationConfig
from repro.harness.experiment import run_benchmark, run_suite
from repro.harness.persistence import (
    load_suite,
    run_result_to_dict,
    save_suite,
    suite_to_dict,
)
from repro.harness.statsdump import format_stats
from repro.workloads.spec import profile_by_name

QUICK = SimulationConfig(scale=0.05)


@pytest.fixture(scope="module")
def one_result():
    return run_benchmark(
        profile_by_name("sjeng"), DefenseSpec.rest("Secure Full"), QUICK
    )


@pytest.fixture(scope="module")
def suite_results():
    return run_suite(
        [profile_by_name("sjeng")], [DefenseSpec.rest("Secure Full")], QUICK
    )


class TestPersistence:
    def test_run_result_roundtrips_through_json(self, one_result):
        payload = run_result_to_dict(one_result)
        decoded = json.loads(json.dumps(payload))
        assert decoded["benchmark"] == "sjeng"
        assert decoded["cycles"] == one_result.cycles
        assert decoded["spec"]["defense"] == "rest"
        assert decoded["rest"]["arms"] >= 0
        assert decoded["core"]["op_counts"]["alu"] > 0

    def test_suite_to_dict_structure(self, suite_results):
        payload = suite_to_dict(suite_results)
        assert set(payload) == {"sjeng"}
        assert {"Plain", "Secure Full"} <= set(payload["sjeng"])

    def test_save_and_load(self, suite_results, tmp_path):
        path = save_suite(
            suite_results, tmp_path / "suite.json", metadata={"scale": 0.05}
        )
        loaded = load_suite(path)
        assert loaded["metadata"]["scale"] == 0.05
        assert loaded["results"]["sjeng"]["Plain"]["cycles"] > 0

    def test_load_rejects_non_suite(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text("{}")
        with pytest.raises(ValueError):
            load_suite(bogus)


class TestStatsDump:
    def test_contains_key_counters(self, one_result):
        text = format_stats(one_result)
        for name in (
            "sim.cycles",
            "sim.ipc",
            "core.rob.blocked_by_store",
            "l1d.miss_rate",
            "rest.arms",
            "commit.op.alu",
        ):
            assert name in text

    def test_headerless_mode(self, one_result):
        text = format_stats(one_result, header=False)
        assert "Begin Simulation" not in text

    def test_every_line_has_description(self, one_result):
        for line in format_stats(one_result, header=False).splitlines():
            assert "#" in line

    def test_every_corestats_counter_is_surfaced(self, one_result):
        """Reflection: no CoreStats field may silently vanish."""
        import dataclasses

        from repro.cpu.stats import CoreStats
        from repro.harness.statsdump import _CORE_COUNTER_ROWS

        names = {
            line.split()[0]
            for line in format_stats(one_result, header=False).splitlines()
        }
        for field in dataclasses.fields(CoreStats):
            mapping = _CORE_COUNTER_ROWS.get(
                field.name, (f"core.{field.name}", "")
            )
            if mapping is None:
                continue  # surfaced through sim.* / commit.op.* rows
            assert mapping[0] in names, (
                f"CoreStats.{field.name} missing from the stats dump"
            )
        # ...and the None-mapped fields really are surfaced elsewhere.
        assert {"sim.cycles", "sim.insts"} <= names
        assert any(name.startswith("commit.op.") for name in names)

    def test_previously_omitted_counters_present(self, one_result):
        text = format_stats(one_result, header=False)
        for name in (
            "core.lsq.lq_full_cycles",
            "core.lsq.sq_full_cycles",
            "core.bpred.mispredict_stall_cycles",
            "core.mem.dram_stall_cycles",
            "core.commit.active_cycles",
        ):
            assert name in text

    def test_stall_rows_sum_to_cycles(self, one_result):
        from repro.obs.stalls import STALL_BUCKETS

        values = {}
        for line in format_stats(one_result, header=False).splitlines():
            name, value = line.split()[:2]
            values[name] = value
        for bucket in STALL_BUCKETS:
            assert f"stall.{bucket}" in values
        stall_total = sum(
            int(value)
            for name, value in values.items()
            if name.startswith("stall.")
        )
        assert stall_total == int(values["sim.cycles"])
