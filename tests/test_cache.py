"""Tests for the set-associative cache, MSHRs and write buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import Cache, CacheConfig
from repro.cache.mshr import MshrFile
from repro.cache.writebuffer import WriteBuffer


def small_cache(**kwargs):
    defaults = dict(name="test", size=1024, associativity=2, line_size=64)
    defaults.update(kwargs)
    return Cache(CacheConfig(**defaults))


class TestGeometry:
    def test_num_sets(self):
        cache = small_cache()
        assert cache.config.num_sets == 1024 // (2 * 64)

    def test_table2_l1_geometry(self):
        cache = Cache(CacheConfig())
        assert cache.config.num_sets == 128
        assert cache.config.hit_latency == 2

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, associativity=3, line_size=64)

    def test_line_address(self):
        cache = small_cache()
        assert cache.line_address(0x1234) == 0x1200
        assert cache.line_address(0x1200) == 0x1200


class TestLookupInstall:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(0x1000) is None
        cache.install(0x1000)
        assert cache.lookup(0x1000) is not None
        assert cache.lookup(0x1038) is not None  # same line

    def test_lru_eviction(self):
        cache = small_cache()  # 2-way, 8 sets, 64B lines
        set_stride = cache.config.num_sets * 64
        a, b, c = 0x0, set_stride, 2 * set_stride  # all map to set 0
        cache.install(a)
        cache.install(b)
        cache.lookup(a)  # touch a so b becomes LRU
        _, victim = cache.install(c)
        assert victim is not None
        assert cache.victim_address(c, victim) == b
        assert cache.lookup(a, touch=False) is not None
        assert cache.lookup(b, touch=False) is None

    def test_victim_carries_metadata(self):
        cache = small_cache()
        set_stride = cache.config.num_sets * 64
        line, _ = cache.install(0x0, token_bits=0b1)
        line.dirty = True
        cache.install(set_stride)
        _, victim = cache.install(2 * set_stride)
        assert victim is not None and victim.token_bits == 0b1 and victim.dirty

    def test_invalidate(self):
        cache = small_cache()
        cache.install(0x1000)
        cache.invalidate(0x1000)
        assert cache.lookup(0x1000) is None

    def test_flush(self):
        cache = small_cache()
        for i in range(16):
            cache.install(i * 64)
        cache.flush()
        assert all(
            cache.lookup(i * 64, touch=False) is None for i in range(16)
        )

    def test_stats(self):
        cache = small_cache()
        cache.stats.misses += 1
        cache.install(0)
        line = cache.lookup(0)
        assert line is not None
        cache.stats.hits += 1
        assert cache.stats.accesses == 2
        assert cache.stats.miss_rate == 0.5

    @given(st.lists(st.integers(min_value=0, max_value=2**16), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_installed_lines_always_found_until_evicted(self, addresses):
        """A just-installed line is always a hit immediately after."""
        cache = small_cache()
        for address in addresses:
            cache.install(address)
            assert cache.lookup(address, touch=False) is not None

    @given(st.lists(st.integers(min_value=0, max_value=2**14), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_set_occupancy_never_exceeds_associativity(self, addresses):
        cache = small_cache()
        for address in addresses:
            if cache.lookup(address) is None:
                cache.install(address)
        for ways in cache._sets:
            assert sum(1 for line in ways if line.valid) <= 2


class TestMshrFile:
    def test_allocate_and_merge(self):
        mshrs = MshrFile(registers=2, entries_per_register=3)
        assert mshrs.allocate(0x1000, op_id=1) is not None
        assert mshrs.allocate(0x1000, op_id=2) is not None  # merge
        assert mshrs.occupancy == 1
        assert mshrs.merges == 1

    def test_structural_stall_when_full(self):
        mshrs = MshrFile(registers=2, entries_per_register=3)
        assert mshrs.allocate(0x1000) is not None
        assert mshrs.allocate(0x2000) is not None
        assert mshrs.allocate(0x3000) is None
        assert mshrs.structural_stalls == 1

    def test_merge_capacity_limit(self):
        mshrs = MshrFile(registers=1, entries_per_register=2)
        mshrs.allocate(0x1000, 1)
        mshrs.allocate(0x1000, 2)
        assert mshrs.allocate(0x1000, 3) is None

    def test_release_frees_register(self):
        mshrs = MshrFile(registers=1, entries_per_register=1)
        mshrs.allocate(0x1000)
        mshrs.release(0x1000)
        assert mshrs.allocate(0x2000) is not None

    def test_token_hold(self):
        mshrs = MshrFile(registers=1, entries_per_register=1)
        mshrs.allocate(0x1000)
        mshrs.hold_for_token_check(0x1000)
        assert mshrs.token_holds == 1
        assert mshrs.lookup(0x1000).held_for_token_check

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            MshrFile(0, 1)


class TestWriteBuffer:
    def test_no_stall_with_room(self):
        wb = WriteBuffer(entries=8)
        assert wb.insert() == 0

    def test_stalls_when_full(self):
        wb = WriteBuffer(entries=2, drain_per_access=0.0)
        wb.insert()
        wb.insert()
        assert wb.insert() > 0
        assert wb.full_stalls == 1

    def test_drains_over_time(self):
        wb = WriteBuffer(entries=2, drain_per_access=1.0)
        for _ in range(100):
            assert wb.insert() == 0  # drains one per access, never fills

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            WriteBuffer(entries=0)
