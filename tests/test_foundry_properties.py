"""Property-based tests for the attack-corpus foundry.

Three guarantees the whole pipeline leans on:

1. Determinism — the corpus is a pure function of ``(seed, count,
   families)``; two generations are byte-identical, and any single case
   regenerated in isolation (``case_at``, the shard path) equals its
   position in the full corpus.
2. Identity — case ids embed the seed and index, so corpora from
   different seeds can never collide in a cache or a results merge.
3. Oracle consistency — every generated case passes ``validate_case``
   plus the structural invariants the executor relies on (expected
   verdict per canonical defense mode, illegal hull on the right side
   of the allocation, benign cases claiming no soundness).
"""

import json
import random

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.defenses import DEFENSE_MODES
from repro.foundry.generator import (
    _gen_linear_overflow,
    case_at,
    generate_corpus,
    validate_case,
)
from repro.foundry.matrix import corpus_digest
from repro.foundry.primitives import (
    AttackCase,
    CaseOutcome,
    FAMILIES,
    Oracle,
    OracleViolation,
)

_OUTCOMES = {o.value for o in CaseOutcome}

seeds = st.integers(min_value=0, max_value=2**32 - 1)
counts = st.integers(min_value=1, max_value=30)

#: Falsifying input hypothesis found for the backward linear-overflow
#: bug (width > k*stride access straddling the allocation start) —
#: pinned permanently on every corpus-validity property so the
#: regression reproduces without a database.
_REGRESSION_SEED = 536870913


def _dump(cases):
    return json.dumps([c.to_json() for c in cases], sort_keys=True)


class TestDeterminism:
    @given(seed=seeds, count=counts)
    @example(seed=_REGRESSION_SEED, count=1)
    @settings(max_examples=20, deadline=None)
    def test_same_seed_byte_identical_corpus(self, seed, count):
        first = generate_corpus(seed, count)
        second = generate_corpus(seed, count)
        assert _dump(first) == _dump(second)
        assert corpus_digest(first) == corpus_digest(second)

    @given(seed=seeds, count=counts)
    @example(seed=_REGRESSION_SEED, count=1)
    @settings(max_examples=20, deadline=None)
    def test_case_at_matches_corpus_position(self, seed, count):
        # The shard executor regenerates cases one at a time; any
        # disagreement with the full-corpus path would silently score
        # results against the wrong oracle.
        corpus = generate_corpus(seed, count)
        for index in (0, count // 2, count - 1):
            assert case_at(seed, index).to_json() == corpus[index].to_json()

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_prefix_stability(self, seed):
        # Growing the corpus must never rewrite existing cases — a
        # warm cache for `--cases 500` stays valid at `--cases 1000`.
        small = generate_corpus(seed, 12)
        large = generate_corpus(seed, 24)
        assert _dump(small) == _dump(large[:12])


class TestIdentity:
    @given(seed_a=seeds, seed_b=seeds, count=counts)
    @settings(max_examples=20, deadline=None)
    def test_disjoint_seeds_disjoint_ids(self, seed_a, seed_b, count):
        ids_a = {c.case_id for c in generate_corpus(seed_a, count)}
        ids_b = {c.case_id for c in generate_corpus(seed_b, count)}
        if seed_a == seed_b:
            assert ids_a == ids_b
        else:
            assert not ids_a & ids_b

    @given(seed=seeds, count=counts)
    @example(seed=_REGRESSION_SEED, count=1)
    @settings(max_examples=20, deadline=None)
    def test_ids_unique_within_corpus(self, seed, count):
        ids = [c.case_id for c in generate_corpus(seed, count)]
        assert len(ids) == len(set(ids))


class TestOracleConsistency:
    @given(seed=seeds, count=counts)
    @example(seed=_REGRESSION_SEED, count=1)
    @settings(max_examples=20, deadline=None)
    def test_every_case_validates(self, seed, count):
        for case in generate_corpus(seed, count):
            validate_case(case)  # raises OracleViolation on any breach

    @given(seed=seeds)
    @example(seed=_REGRESSION_SEED)
    @settings(max_examples=15, deadline=None)
    def test_structural_invariants(self, seed):
        for case in generate_corpus(seed, 18):
            oracle = case.oracle
            assert set(oracle.expected) == set(DEFENSE_MODES)
            assert set(oracle.expected.values()) <= _OUTCOMES
            # An undefended run never *detects* anything.
            assert oracle.expected["none"] in (
                CaseOutcome.MISSED.value,
                CaseOutcome.CLEAN.value,
            )
            if oracle.kind == "benign":
                assert not oracle.sound_detects
                assert oracle.illegal_start is None
            else:
                # Every real violation is sound-detectable by a
                # byte-granular reference detector — even when all the
                # modeled defenses are expected to miss it (that gap IS
                # the REST false-negative measurement).
                assert oracle.sound_detects
                if oracle.illegal_start is not None:
                    assert oracle.illegal_start < oracle.illegal_end

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_families_cover_round_robin(self, seed):
        corpus = generate_corpus(seed, len(FAMILIES) * 2)
        assert {c.family for c in corpus} == set(FAMILIES)


class TestBackwardOverflowRegression:
    """Direct (non-hypothesis) pins for the backward width>stride bug.

    ``_gen_linear_overflow`` used to emit backward accesses at
    ``-k*stride`` whose ``width > k*stride`` span crossed offset 0 into
    the granted allocation, producing a hull like ``[-116, 4)`` that
    overlaps ``[0, size)`` and trips ``validate_case``.
    """

    @staticmethod
    def _backward_cases(limit=200):
        """Deterministically drive the generator into backward draws."""
        found = []
        for probe in range(limit):
            rng = random.Random(f"backward-regression:{probe}")
            params, oracle = _gen_linear_overflow(rng)
            if params["direction"] == "backward":
                found.append((params, oracle))
        return found

    def test_backward_accesses_never_cross_allocation_start(self):
        cases = self._backward_cases()
        assert cases, "probe seeds produced no backward cases"
        wide = 0
        for params, oracle in cases:
            for off, width in params["accesses"]:
                assert off + width <= 0, (
                    f"backward access [{off}, {off + width}) crosses "
                    f"into the granted allocation (stride "
                    f"{params['stride']}, width {params['width']})"
                )
            if params["width"] > params["stride"]:
                wide += 1
            # The hull must be strictly one-sided (underflow only).
            assert oracle.illegal_end <= 0
        assert wide, "no width>stride case exercised — widen the probes"

    def test_regression_seed_case_is_one_sided_and_valid(self):
        # The exact falsifying input hypothesis reported: index 0 of
        # corpus 536870913 is a backward linear overflow.
        case = case_at(_REGRESSION_SEED, 0)
        assert case.family == "linear_overflow"
        assert case.params["direction"] == "backward"
        assert case.params["width"] > case.params["stride"]
        validate_case(case)
        assert case.oracle.illegal_end <= 0

    def test_validate_case_rejects_two_sided_hull(self):
        # Future generator families must fail loudly if they ever emit
        # a hull spanning both sides of the allocation — _illegal_hull
        # cannot represent that region faithfully.
        case = case_at(_REGRESSION_SEED, 0)
        bad = AttackCase(
            case_id=case.case_id,
            family=case.family,
            params=dict(case.params),
            oracle=Oracle(
                kind="spatial",
                sound_detects=True,
                alloc_size=case.oracle.alloc_size,
                illegal_start=-8,
                illegal_end=case.oracle.alloc_size + 8,
                illegal_ref="victim",
                expected=dict(case.oracle.expected),
            ),
        )
        with pytest.raises(OracleViolation, match="two-sided"):
            validate_case(bad)
