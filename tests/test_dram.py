"""Tests for the DRAM timing model (Table II memory parameters)."""

import pytest

from repro.mem import DramConfig, DramModel


class TestTiming:
    def test_table2_parameters(self):
        config = DramConfig()
        assert config.cas_ns == 13.75
        assert config.precharge_ns == 13.75
        assert config.ras_ns == 35.0

    def test_row_miss_costs_more(self):
        config = DramConfig()
        assert config.row_miss_cycles > config.row_hit_cycles

    def test_ns_to_cycles_at_2ghz(self):
        config = DramConfig(core_clock_ghz=2.0)
        assert config.ns_to_cycles(10.0) == 20
        assert config.ns_to_cycles(0.1) == 1  # floor of one cycle

    def test_first_access_is_row_miss(self):
        dram = DramModel()
        latency = dram.access(0x1000, is_write=False)
        assert latency == dram.config.row_miss_cycles
        assert dram.stats.row_misses == 1

    def test_same_row_hits(self):
        dram = DramModel()
        dram.access(0x1000, is_write=False)
        latency = dram.access(0x1040, is_write=False)
        assert latency == dram.config.row_hit_cycles
        assert dram.stats.row_hits == 1

    def test_different_row_same_bank_misses(self):
        dram = DramModel()
        config = dram.config
        dram.access(0x0, is_write=False)
        # Same bank: row numbers congruent modulo bank count.
        far = config.row_size * config.banks
        assert dram.access(far, is_write=False) == config.row_miss_cycles

    def test_read_write_counters(self):
        dram = DramModel()
        dram.access(0, is_write=False)
        dram.access(0, is_write=True)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1
        assert dram.stats.accesses == 2

    def test_row_hit_rate(self):
        dram = DramModel()
        dram.access(0, False)
        for _ in range(9):
            dram.access(64, False)
        assert dram.stats.row_hit_rate == pytest.approx(0.9)

    def test_reset_stats(self):
        dram = DramModel()
        dram.access(0, False)
        dram.reset_stats()
        assert dram.stats.accesses == 0
