"""Tests for the branch predictor model."""

import pytest

from repro.cpu import BranchPredictor


class TestBranchPredictor:
    def test_learns_always_taken(self):
        bp = BranchPredictor()
        for _ in range(100):
            bp.predict_and_update(0x400, True)
        assert bp.accuracy > 0.9

    def test_learns_never_taken(self):
        bp = BranchPredictor()
        for _ in range(100):
            bp.predict_and_update(0x400, False)
        # Counters initialise weakly-taken, so early misses happen.
        assert bp.mispredictions <= 5

    def test_learns_alternating_pattern_via_history(self):
        bp = BranchPredictor()
        for i in range(2000):
            bp.predict_and_update(0x400, i % 2 == 0)
        bp.reset_stats()
        for i in range(200):
            bp.predict_and_update(0x400, i % 2 == 0)
        assert bp.accuracy > 0.95

    def test_loop_branch_pattern(self):
        """A loop taken 15 times then not-taken once, repeatedly."""
        bp = BranchPredictor()
        for _ in range(50):
            for i in range(16):
                bp.predict_and_update(0x400, i != 15)
        assert bp.accuracy > 0.85

    def test_distinct_pcs_do_not_interfere(self):
        bp = BranchPredictor()
        for _ in range(200):
            bp.predict_and_update(0x400, True)
            bp.predict_and_update(0x800, False)
        assert bp.accuracy > 0.9

    def test_accuracy_with_no_predictions(self):
        assert BranchPredictor().accuracy == 1.0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchPredictor(table_bits=0)

    def test_reset_stats(self):
        bp = BranchPredictor()
        bp.predict_and_update(0, True)
        bp.reset_stats()
        assert bp.predictions == 0 and bp.mispredictions == 0
