"""Tests for the coverage and tradeoff analyses."""

import pytest

from repro.analysis import (
    coverage_report,
    quarantine_tradeoff,
    token_width_tradeoff,
)
from repro.analysis.coverage import ATTACK_CLASSES
from repro.defenses import AsanDefense, PlainDefense, RestDefense
from repro.runtime import Machine
from repro.workloads.attacks import ATTACK_REGISTRY


class TestCoverage:
    def test_all_attacks_classified(self):
        classified = {name for names in ATTACK_CLASSES.values() for name in names}
        assert classified == set(ATTACK_REGISTRY)

    def test_rest_coverage_shape(self):
        report = coverage_report(lambda: RestDefense(Machine()))
        # Linear spatial: everything applicable stopped.
        assert report.stopped_fraction("spatial-linear") == 1.0
        # Targeted/intra-object/pad: missed by design.
        assert report.stopped_fraction("spatial-targeted") == 0.0
        # Temporal: protection until realloc — most stopped, the
        # documented post-realloc and use-after-return cases missed.
        temporal = report.stopped_fraction("temporal")
        assert 0.5 <= temporal < 1.0
        # Hardening probes all stopped.
        assert report.stopped_fraction("hardening") == 1.0

    def test_plain_coverage_near_zero(self):
        report = coverage_report(lambda: PlainDefense(Machine()))
        assert report.stopped_fraction("spatial-linear") == 0.0
        assert report.stopped_fraction("temporal") == 0.0

    def test_rest_strictly_dominates_asan_on_composability(self):
        rest = coverage_report(lambda: RestDefense(Machine()))
        asan = coverage_report(lambda: AsanDefense(Machine()))
        assert rest.stopped_fraction("spatial-linear") > (
            asan.stopped_fraction("spatial-linear")
        )

    def test_missed_attacks_listed(self):
        report = coverage_report(lambda: RestDefense(Machine()))
        missed = report.missed_attacks()
        assert "targeted_corruption" in missed
        assert "uaf_after_reallocation" in missed
        assert "heartbleed" not in missed


class TestQuarantineTradeoff:
    def test_window_monotonic_in_budget(self):
        points = quarantine_tradeoff(budgets=(0, 2048, 16384))
        windows = [p.protection_window for p in points]
        assert windows == sorted(windows)
        assert windows[0] <= 1

    def test_memory_cost_tracks_budget(self):
        points = quarantine_tradeoff(budgets=(1024, 65536))
        assert points[1].peak_quarantine_bytes > points[0].peak_quarantine_bytes

    def test_token_work_counted(self):
        points = quarantine_tradeoff(budgets=(4096,), churn=50)
        assert points[0].token_instructions > 0


class TestTokenWidthTradeoff:
    def test_pad_window_shrinks_with_width(self):
        points = {p.width: p for p in token_width_tradeoff()}
        assert (
            points[16].max_pad_false_negative
            < points[64].max_pad_false_negative
        )

    def test_pad_window_bounded_by_width(self):
        for point in token_width_tradeoff():
            # A size of width+1 leaves a pad of width-1 bytes.
            assert point.max_pad_false_negative == point.width - 1

    def test_blacklist_cost_inverse_to_width(self):
        points = {p.width: p for p in token_width_tradeoff()}
        assert points[16].arms_per_4k_blacklist == 256
        assert points[64].arms_per_4k_blacklist == 64

    def test_secret_bits(self):
        points = {p.width: p for p in token_width_tradeoff()}
        assert points[64].secret_bits == 512
        assert points[16].secret_bits == 128
