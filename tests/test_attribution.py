"""Tests for cycle attribution."""

import pytest

from repro.analysis import attribute_overhead, breakdown
from repro.core.modes import Mode
from repro.harness.configs import DefenseSpec, SimulationConfig
from repro.harness.experiment import run_benchmark
from repro.workloads.spec import profile_by_name

QUICK = SimulationConfig(scale=0.1)


@pytest.fixture(scope="module")
def runs():
    profile = profile_by_name("hmmer")
    return {
        "plain": run_benchmark(profile, DefenseSpec.plain(), QUICK),
        "secure": run_benchmark(profile, DefenseSpec.rest("s"), QUICK),
        "debug": run_benchmark(
            profile, DefenseSpec.rest("d", mode=Mode.DEBUG), QUICK
        ),
    }


class TestBreakdown:
    def test_categories_bounded_by_total(self, runs):
        parts = breakdown(runs["plain"])
        assert parts.residual >= 0
        assert sum(parts.as_dict().values()) == parts.total

    def test_debug_overhead_lands_on_blocked_stores(self, runs):
        """The paper's mechanism: debug-mode cost is delayed store
        commit — the attribution must say so."""
        attribution = attribute_overhead(runs["debug"], runs["plain"])
        assert attribution["rob_blocked_by_store"] > 0
        # Blocked stores must be a major component of the debug delta.
        total = sum(attribution.values())
        assert attribution["rob_blocked_by_store"] > 0.3 * total

    def test_attribution_sums_to_overhead(self, runs):
        attribution = attribute_overhead(runs["secure"], runs["plain"])
        overhead = (runs["secure"].cycles / runs["plain"].cycles - 1) * 100
        assert sum(attribution.values()) == pytest.approx(overhead, abs=0.01)

    def test_mismatched_benchmarks_rejected(self, runs):
        other = run_benchmark(
            profile_by_name("sjeng"), DefenseSpec.plain(), QUICK
        )
        with pytest.raises(ValueError):
            attribute_overhead(runs["secure"], other)
