"""Distributed sweep fabric: leases, routing, liveness, chaos identity.

Three layers of test:

* pure-unit: wire marshalling, rendezvous routing, kill-plan seeding;
* dispatcher-level: a :class:`FabricDispatcher` driven directly with
  fake worker connections, so lease grant/revoke/redeem, bounded
  reassignment, late-result discard, and drain semantics are exercised
  without any sockets or subprocesses;
* end-to-end: a real coordinator daemon (in a thread) with real
  ``repro worker`` subprocesses over a Unix socket — including the
  headline chaos move, SIGKILLing a worker mid-sweep and requiring the
  job to finish correctly on the survivor.
"""

import asyncio
import json
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core.modes import Mode
from repro.harness.configs import DefenseSpec
from repro.harness.parallel import WorkUnit
from repro.faults.plan import WorkerKill, WorkerKillPlan
from repro.service import ServiceClient, ServiceError, wait_for_daemon
from repro.service import protocol
from repro.service.daemon import Daemon, ServiceConfig
from repro.service.fabric import (
    WORKER_LOST,
    FabricDispatcher,
    rendezvous_rank,
)


@pytest.fixture(autouse=True)
def _fixed_salt(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_SALT", "fabric-test")


def make_unit(uid="bzip2/Secure Heap/1", **kwargs):
    return WorkUnit(
        uid=uid,
        module="repro.harness.sweeps",
        func="run_cell",
        kwargs=kwargs or {"seed": 1, "scale": 0.05},
        key_payload={"uid": uid},
    )


class TestWireMarshalling:
    def test_defense_spec_kwargs_round_trip(self):
        spec = DefenseSpec.rest("Secure Heap", mode=Mode.SECURE)
        unit = make_unit(profile="bzip2", spec=spec, scale=0.05, seed=1)
        wire = protocol.unit_to_wire(unit)
        # The wire form is honest JSON (no pickles hiding inside).
        decoded = protocol.unit_from_wire(
            json.loads(json.dumps(wire))
        )
        assert decoded.uid == unit.uid
        assert decoded.kwargs["spec"] == spec
        assert isinstance(decoded.kwargs["spec"].mode, Mode)
        assert decoded.kwargs["scale"] == 0.05

    def test_unmarshallable_kwargs_rejected_loudly(self):
        unit = make_unit(callback=lambda: None)
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.unit_to_wire(unit)
        assert excinfo.value.code == "unmarshallable_unit"

    def test_plain_json_kwargs_pass_through_untouched(self):
        unit = make_unit(scale=0.1, seed=3, names=["a", "b"])
        wire = protocol.unit_to_wire(unit)
        assert wire["kwargs"] == {"scale": 0.1, "seed": 3,
                                  "names": ["a", "b"]}


class TestRendezvousRouting:
    def test_deterministic_and_order_independent(self):
        names = ["w0", "w1", "w2", "w3"]
        rank = rendezvous_rank("some-key", names)
        assert rendezvous_rank("some-key", list(reversed(names))) == rank
        assert rendezvous_rank("some-key", names) == rank

    def test_removing_a_loser_does_not_move_the_winner(self):
        """The HRW property that makes kill/rejoin churn cheap: only
        units on the dead worker move."""
        names = ["w0", "w1", "w2", "w3"]
        moved = 0
        for index in range(64):
            key = f"unit-{index}"
            winner = rendezvous_rank(key, names)[0]
            survivors = [name for name in names if name != "w3"]
            if winner != "w3":
                if rendezvous_rank(key, survivors)[0] != winner:
                    moved += 1
        assert moved == 0

    def test_keys_spread_over_workers(self):
        names = ["w0", "w1", "w2"]
        winners = {
            rendezvous_rank(f"unit-{index}", names)[0]
            for index in range(64)
        }
        assert winners == set(names)


class TestWorkerKillPlan:
    def test_same_seed_same_schedule(self):
        first = WorkerKillPlan.compile(
            seed=5, workers=3, kills=2, total_units=40
        )
        second = WorkerKillPlan.compile(
            seed=5, workers=3, kills=2, total_units=40
        )
        assert first.to_dict() == second.to_dict()
        third = WorkerKillPlan.compile(
            seed=6, workers=3, kills=2, total_units=40
        )
        assert first.to_dict() != third.to_dict()

    def test_triggers_land_mid_run(self):
        plan = WorkerKillPlan.compile(
            seed=1, workers=2, kills=4, total_units=100
        )
        for kill in plan.kills:
            assert 10 <= kill.after_results < 70
            assert kill.worker in (0, 1)

    def test_round_trips_through_json(self, tmp_path):
        plan = WorkerKillPlan.compile(
            seed=9, workers=2, kills=1, total_units=8
        )
        loaded = WorkerKillPlan.load(plan.write(tmp_path / "kills.json"))
        assert loaded.to_dict() == plan.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerKill(worker=-1, after_results=1)
        with pytest.raises(ValueError):
            WorkerKillPlan.compile(seed=1, workers=0, kills=1,
                                   total_units=8)


class FakeWriter:
    """Collects frames a coordinator writes to one fake worker."""

    def __init__(self):
        self.frames = []
        self.closed = False

    def write(self, data: bytes) -> None:
        for line in data.splitlines():
            if line.strip():
                self.frames.append(json.loads(line))

    def close(self) -> None:
        self.closed = True

    def frames_of(self, ftype):
        return [f for f in self.frames if f.get("type") == ftype]


def ok_result_wire(uid, value="fine"):
    return {
        "uid": uid, "ok": True, "value": value, "error": None,
        "cpu_seconds": 0.0, "wall_seconds": 0.0, "attempts": 1,
        "quarantined": False,
    }


def run_async(coroutine):
    return asyncio.run(coroutine)


class TestFabricDispatcher:
    def test_register_assigns_names_and_capacity(self):
        async def scenario():
            fabric = FabricDispatcher()
            seen = []
            fabric.on_capacity_change = seen.append
            first = fabric.register({"slots": 2, "pid": 1}, FakeWriter())
            second = fabric.register(
                {"name": "bench-box", "slots": 3, "pid": 2}, FakeWriter()
            )
            assert first.name == "worker-001"
            assert second.name == "bench-box"
            assert fabric.capacity == 5
            assert seen == [2, 5]

        run_async(scenario())

    def test_unit_redeemed_by_result(self):
        async def scenario():
            fabric = FabricDispatcher()
            writer = FakeWriter()
            fabric.register({"name": "w0", "slots": 2, "pid": 1}, writer)
            unit = make_unit()
            task = asyncio.ensure_future(fabric.run_unit(unit))
            await asyncio.sleep(0)  # let the grant happen
            [assign] = writer.frames_of("w.assign")
            assert assign["unit"]["uid"] == unit.uid
            fabric.redeem(assign["lease"], ok_result_wire(unit.uid))
            result = await task
            assert result.ok and result.value == "fine"
            assert fabric.redeemed == 1
            assert fabric.leases == {}
            assert fabric.workers["w0"].completed == 1

        run_async(scenario())

    def test_worker_death_reassigns_to_survivor(self):
        async def scenario():
            fabric = FabricDispatcher(unit_retries=2)
            writers = {
                name: FakeWriter() for name in ("w0", "w1")
            }
            for name, writer in writers.items():
                fabric.register(
                    {"name": name, "slots": 2, "pid": 1}, writer
                )
            unit = make_unit()
            events = []
            task = asyncio.ensure_future(
                fabric.run_unit(
                    unit, on_event=lambda kind, info: events.append(kind)
                )
            )
            await asyncio.sleep(0)
            first = next(
                name for name, writer in writers.items()
                if writer.frames_of("w.assign")
            )
            fabric.worker_lost(first, reason="test kill")
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            survivor = "w1" if first == "w0" else "w0"
            [assign] = writers[survivor].frames_of("w.assign")
            fabric.redeem(assign["lease"], ok_result_wire(unit.uid))
            result = await task
            assert result.ok
            assert result.attempts == 2
            assert fabric.reassignments == 1
            assert fabric.workers_lost == 1
            assert events == ["fabric.assign", "fabric.lost",
                              "fabric.assign"]

        run_async(scenario())

    def test_retry_budget_exhaustion_quarantines(self):
        async def scenario():
            fabric = FabricDispatcher(unit_retries=1)
            unit = make_unit()
            events = []
            task = asyncio.ensure_future(
                fabric.run_unit(
                    unit, on_event=lambda kind, info: events.append(kind)
                )
            )
            for round_number in range(2):  # initial + 1 retry
                writer = FakeWriter()
                fabric.register(
                    {"name": f"doomed-{round_number}", "slots": 1,
                     "pid": 1},
                    writer,
                )
                while not writer.frames_of("w.assign"):
                    await asyncio.sleep(0)
                fabric.worker_lost(f"doomed-{round_number}",
                                   reason="test kill")
            result = await task
            assert not result.ok
            assert result.quarantined
            assert result.error["type"] == WORKER_LOST
            assert result.attempts == 2
            assert fabric.lost_units == 1
            assert events.count("fault.quarantine") == 1

        run_async(scenario())

    def test_late_result_for_unknown_lease_discarded(self):
        async def scenario():
            fabric = FabricDispatcher()
            fabric.register(
                {"name": "w0", "slots": 1, "pid": 1}, FakeWriter()
            )
            fabric.redeem("L999999", ok_result_wire("ghost/unit/1"))
            assert fabric.redeemed == 0
            assert fabric.workers["w0"].completed == 0

        run_async(scenario())

    def test_unit_waits_for_first_worker(self):
        async def scenario():
            fabric = FabricDispatcher(heartbeat=0.05)
            unit = make_unit()
            task = asyncio.ensure_future(fabric.run_unit(unit))
            await asyncio.sleep(0.1)
            assert not task.done(), "no worker yet: the unit must queue"
            writer = FakeWriter()
            fabric.register({"name": "w0", "slots": 1, "pid": 1}, writer)
            while not writer.frames_of("w.assign"):
                await asyncio.sleep(0)
            [assign] = writer.frames_of("w.assign")
            fabric.redeem(assign["lease"], ok_result_wire(unit.uid))
            assert (await task).ok

        run_async(scenario())

    def test_drain_aborts_pending_units_and_notifies_workers(self):
        async def scenario():
            fabric = FabricDispatcher()
            writer = FakeWriter()
            fabric.register({"name": "w0", "slots": 1, "pid": 1}, writer)
            unit = make_unit()
            task = asyncio.ensure_future(fabric.run_unit(unit))
            await asyncio.sleep(0)
            fabric.begin_drain(grace=0.0)
            assert writer.frames_of("w.drain")
            # The monitor revokes leases once the grace expires.
            monitor = asyncio.ensure_future(fabric.monitor())
            result = await asyncio.wait_for(task, timeout=5)
            monitor.cancel()
            assert not result.ok
            assert result.error["type"] == "WorkerAborted"

        run_async(scenario())

    def test_monitor_expires_silent_worker(self):
        async def scenario():
            fabric = FabricDispatcher(heartbeat=0.05, miss_factor=2.0)
            writer = FakeWriter()
            handle = fabric.register(
                {"name": "w0", "slots": 1, "pid": 1}, writer
            )
            monitor = asyncio.ensure_future(fabric.monitor())
            handle.last_seen = time.monotonic() - 10.0
            deadline = time.monotonic() + 5
            while fabric.workers and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            monitor.cancel()
            assert fabric.workers == {}
            assert fabric.workers_lost == 1
            assert writer.closed

        run_async(scenario())

    def test_rejoin_replaces_stale_registration(self):
        async def scenario():
            fabric = FabricDispatcher()
            old_writer = FakeWriter()
            fabric.register({"name": "w0", "slots": 2, "pid": 1},
                            old_writer)
            new_writer = FakeWriter()
            fabric.register({"name": "w0", "slots": 2, "pid": 2},
                            new_writer)
            assert len(fabric.workers) == 1
            assert fabric.workers["w0"].pid == 2
            assert old_writer.closed
            assert fabric.workers_joined == 2
            assert fabric.workers_lost == 1

        run_async(scenario())

    def test_events_journal_records_lease_lifecycle(self, tmp_path):
        async def scenario():
            fabric = FabricDispatcher(
                events_path=tmp_path / "events.jsonl"
            )
            writer = FakeWriter()
            fabric.register({"name": "w0", "slots": 1, "pid": 1}, writer)
            unit = make_unit()
            task = asyncio.ensure_future(fabric.run_unit(unit))
            await asyncio.sleep(0)
            [assign] = writer.frames_of("w.assign")
            fabric.redeem(assign["lease"], ok_result_wire(unit.uid))
            await task

        run_async(scenario())
        kinds = [
            json.loads(line)["kind"]
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert kinds == ["worker.join", "lease.grant", "lease.redeem"]


# -- end-to-end: real coordinator + real worker subprocesses ----------------


@contextmanager
def running_coordinator(state_dir=None, **overrides):
    own_dir = state_dir is None
    if own_dir:
        state_dir = tempfile.mkdtemp(prefix="fab", dir="/tmp")
    overrides.setdefault("coordinator", True)
    overrides.setdefault("heartbeat", 0.2)
    config = ServiceConfig(state_dir=str(state_dir), **overrides)
    daemon = Daemon(config)
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.run()), daemon=True
    )
    thread.start()
    socket_path = str(config.resolved_socket())
    wait_for_daemon(socket_path=socket_path)
    try:
        yield daemon, socket_path, Path(state_dir)
    finally:
        daemon.stop_threadsafe()
        thread.join(timeout=60)
        assert not thread.is_alive(), "coordinator failed to drain"
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)


def spawn_worker(socket_path, name, slots=2):
    src = str(Path(__file__).resolve().parents[1] / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", socket_path, "--name", name,
            "--slots", str(slots),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def wait_workers(socket_path, count, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with ServiceClient(socket_path=socket_path) as client:
            if client.workers()["fabric"]["workers"] >= count:
                return
        time.sleep(0.05)
    raise TimeoutError(f"fabric never reached {count} worker(s)")


SWEEP_PARAMS = {
    "benchmarks": ["bzip2"],
    "specs": ["Secure Heap"],
    "seeds": [1],
    "scale": 0.05,
    "live": False,
}


class TestFabricEndToEnd:
    def test_sweep_runs_on_remote_worker(self):
        with running_coordinator() as (daemon, socket_path, state):
            worker = spawn_worker(socket_path, "w0")
            try:
                wait_workers(socket_path, 1)
                with ServiceClient(socket_path=socket_path) as client:
                    view = client.workers()
                    assert view["coordinator"] is True
                    assert [w["name"] for w in view["workers"]] == ["w0"]
                    job = client.submit("sweep", dict(SWEEP_PARAMS))
                    final = client.wait(job["id"], poll=0.1)
                    stats = client.ping()["fabric"]
            finally:
                worker.terminate()
                worker.wait(timeout=10)
        assert final["state"] == "done"
        assert final["result"]["specs"]["Secure Heap"]["samples"]
        assert stats["redeemed"] == 2  # Plain + Secure Heap
        assert stats["lost_units"] == 0

    def test_units_queue_until_first_worker_joins(self):
        with running_coordinator() as (daemon, socket_path, state):
            with ServiceClient(socket_path=socket_path) as client:
                job = client.submit("sweep", dict(SWEEP_PARAMS))
                time.sleep(0.5)
                assert client.status(job["id"])["state"] in (
                    "queued", "running",
                )
            worker = spawn_worker(socket_path, "w0")
            try:
                with ServiceClient(socket_path=socket_path) as client:
                    final = client.wait(job["id"], poll=0.1)
            finally:
                worker.terminate()
                worker.wait(timeout=10)
        assert final["state"] == "done"

    def test_sigkilled_worker_is_reassigned_to_survivor(self):
        """The chaos headline at test scale: one worker dies mid-sweep,
        the unit is reassigned, the job completes with no lost work."""
        params = {
            "benchmarks": ["bzip2", "sjeng"],
            "specs": ["Secure Heap"],
            "seeds": [1, 2],
            "scale": 0.3,
            "live": False,
        }
        with running_coordinator(
            heartbeat=0.2, unit_retries=2
        ) as (daemon, socket_path, state):
            victim = spawn_worker(socket_path, "victim", slots=2)
            survivor = spawn_worker(socket_path, "survivor", slots=2)
            try:
                wait_workers(socket_path, 2)
                with ServiceClient(socket_path=socket_path) as client:
                    job = client.submit("sweep", params)
                    # Wait until the victim actually holds a lease so
                    # the kill lands mid-unit, then SIGKILL it.
                    deadline = time.monotonic() + 30
                    while time.monotonic() < deadline:
                        busy = [
                            w for w in client.workers()["workers"]
                            if w["name"] == "victim" and w["inflight"] > 0
                        ]
                        if busy:
                            break
                        time.sleep(0.02)
                    victim.send_signal(signal.SIGKILL)
                    victim.wait(timeout=10)
                    final = client.wait(job["id"], poll=0.1)
                    stats = client.ping()["fabric"]
            finally:
                for process in (victim, survivor):
                    if process.poll() is None:
                        process.terminate()
                        process.wait(timeout=10)
        assert final["state"] == "done"
        assert final["failures"] == 0
        assert stats["workers_lost"] >= 1
        assert stats["reassignments"] >= 1

    def test_worker_register_rejected_by_local_daemon(self):
        from tests.test_service import running_daemon

        with running_daemon() as (daemon, socket_path, state):
            with ServiceClient(socket_path=socket_path) as client:
                client._send(
                    protocol.request("w.register", name="w0", slots=1,
                                     pid=0)
                )
                reply = client._read_frame()
        assert reply["type"] == "error"
        assert reply["code"] == "not_coordinator"

    def test_workers_verb_on_local_daemon(self):
        from tests.test_service import running_daemon

        with running_daemon() as (daemon, socket_path, state):
            with ServiceClient(socket_path=socket_path) as client:
                view = client.workers()
        assert view["coordinator"] is False
        assert view["workers"] == []

    def test_fault_injection_composes_through_fabric(self, tmp_path):
        """A permanent crash plan in the worker's environment produces
        the same quarantine semantics as the local pool (PR 4)."""
        import os

        from repro.faults.plan import ALWAYS, FaultPlan, FaultSpec

        uid = "bzip2/Secure Heap/1"
        plan = FaultPlan(seed=1)
        plan.faults[uid] = FaultSpec(kind="crash", fail_attempts=ALWAYS)
        plan_path = plan.write(tmp_path / "plan.json")
        with running_coordinator(retries=1) as (
            daemon, socket_path, state,
        ):
            src = str(Path(__file__).resolve().parents[1] / "src")
            env = dict(os.environ)
            env["PYTHONPATH"] = src + os.pathsep + env.get(
                "PYTHONPATH", ""
            )
            env["REPRO_FAULT_PLAN"] = str(plan_path)
            worker = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--connect", socket_path, "--name", "faulty",
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
            )
            try:
                wait_workers(socket_path, 1)
                with ServiceClient(socket_path=socket_path) as client:
                    job = client.submit("sweep", dict(SWEEP_PARAMS))
                    final = client.wait(job["id"], poll=0.1)
            finally:
                worker.terminate()
                worker.wait(timeout=10)
        assert final["state"] == "failed"
        assert final["error"]["type"] == "SweepError"
        assert uid in final["error"]["message"]
