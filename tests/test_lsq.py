"""Tests for the load/store queue and its REST forwarding checks."""

import pytest

from repro.core import RestException
from repro.core.exceptions import RestFaultKind
from repro.cpu import LoadStoreQueue, SqEntryKind


class TestDispatchAndOccupancy:
    def test_capacities(self):
        lsq = LoadStoreQueue(lq_entries=2, sq_entries=2)
        lsq.dispatch_load(0)
        lsq.dispatch_load(1)
        assert lsq.lq_full
        with pytest.raises(RuntimeError):
            lsq.dispatch_load(2)

    def test_sq_overflow(self):
        lsq = LoadStoreQueue(sq_entries=1)
        lsq.dispatch_store_like(0, SqEntryKind.STORE, 0x100, 8)
        assert lsq.sq_full
        with pytest.raises(RuntimeError):
            lsq.dispatch_store_like(1, SqEntryKind.STORE, 0x200, 8)

    def test_retire_frees_entries(self):
        lsq = LoadStoreQueue(lq_entries=1, sq_entries=1)
        lsq.dispatch_load(0)
        lsq.retire_load(0)
        assert not lsq.lq_full
        lsq.dispatch_store_like(1, SqEntryKind.STORE, 0x100, 8)
        lsq.retire_store_like(1)
        assert not lsq.sq_full

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LoadStoreQueue(lq_entries=0)

    def test_arm_entries_carry_no_value(self):
        lsq = LoadStoreQueue()
        entry = lsq.dispatch_store_like(0, SqEntryKind.ARM, 0x1000, 64)
        assert not entry.has_value
        entry = lsq.dispatch_store_like(1, SqEntryKind.STORE, 0x2000, 8)
        assert entry.has_value


class TestForwarding:
    def test_store_forwards_to_covered_load(self):
        lsq = LoadStoreQueue()
        lsq.dispatch_store_like(0, SqEntryKind.STORE, 0x100, 16)
        match = lsq.search_for_load(1, 0x104, 8)
        assert match is not None and match.seq == 0
        assert lsq.forwards == 1

    def test_partial_cover_does_not_forward(self):
        lsq = LoadStoreQueue()
        lsq.dispatch_store_like(0, SqEntryKind.STORE, 0x100, 8)
        assert lsq.search_for_load(1, 0x104, 8) is None

    def test_younger_store_does_not_forward_to_older_load(self):
        lsq = LoadStoreQueue()
        lsq.dispatch_store_like(5, SqEntryKind.STORE, 0x100, 8)
        assert lsq.search_for_load(3, 0x100, 8) is None

    def test_youngest_covering_store_wins(self):
        lsq = LoadStoreQueue()
        lsq.dispatch_store_like(0, SqEntryKind.STORE, 0x100, 8)
        lsq.dispatch_store_like(1, SqEntryKind.STORE, 0x100, 8)
        match = lsq.search_for_load(2, 0x100, 8)
        assert match is not None and match.seq == 1

    def test_drained_store_does_not_forward(self):
        lsq = LoadStoreQueue()
        lsq.dispatch_store_like(0, SqEntryKind.STORE, 0x100, 8)
        lsq.retire_store_like(0)
        assert lsq.search_for_load(1, 0x100, 8) is None

    def test_disarm_never_forwards(self):
        lsq = LoadStoreQueue()
        lsq.dispatch_store_like(0, SqEntryKind.DISARM, 0x100, 64)
        assert lsq.search_for_load(1, 0x100, 8) is None


class TestRestViolations:
    def test_load_hitting_inflight_arm_raises(self):
        """Figure 5: forwarding from an arm leaks the token — raise."""
        lsq = LoadStoreQueue(line_size=64)
        lsq.dispatch_store_like(0, SqEntryKind.ARM, 0x1000, 64)
        with pytest.raises(RestException) as info:
            lsq.search_for_load(1, 0x1008, 8)
        assert info.value.kind is RestFaultKind.LSQ_FORWARD_FROM_ARM
        assert lsq.rest_violations == 1

    def test_load_to_other_line_unaffected_by_arm(self):
        lsq = LoadStoreQueue(line_size=64)
        lsq.dispatch_store_like(0, SqEntryKind.ARM, 0x1000, 64)
        assert lsq.search_for_load(1, 0x1040, 8) is None

    def test_store_over_inflight_arm_raises(self):
        lsq = LoadStoreQueue(line_size=64)
        lsq.dispatch_store_like(0, SqEntryKind.ARM, 0x1000, 64)
        with pytest.raises(RestException) as info:
            lsq.check_store(1, 0x1010, 8)
        assert info.value.kind is RestFaultKind.LSQ_STORE_OVER_ARM

    def test_double_inflight_disarm_raises(self):
        lsq = LoadStoreQueue()
        lsq.dispatch_store_like(0, SqEntryKind.DISARM, 0x1000, 64)
        with pytest.raises(RestException) as info:
            lsq.dispatch_store_like(1, SqEntryKind.DISARM, 0x1000, 64)
        assert info.value.kind is RestFaultKind.LSQ_DOUBLE_DISARM

    def test_disarm_to_different_location_ok(self):
        lsq = LoadStoreQueue()
        lsq.dispatch_store_like(0, SqEntryKind.DISARM, 0x1000, 64)
        lsq.dispatch_store_like(1, SqEntryKind.DISARM, 0x1040, 64)
        assert lsq.sq_occupancy == 2

    def test_drained_arm_does_not_trigger(self):
        lsq = LoadStoreQueue(line_size=64)
        lsq.dispatch_store_like(0, SqEntryKind.ARM, 0x1000, 64)
        lsq.retire_store_like(0)
        assert lsq.search_for_load(1, 0x1008, 8) is None
        lsq.check_store(2, 0x1008, 8)  # no raise

    def test_older_load_unaffected_by_younger_arm(self):
        lsq = LoadStoreQueue(line_size=64)
        lsq.dispatch_store_like(5, SqEntryKind.ARM, 0x1000, 64)
        assert lsq.search_for_load(2, 0x1008, 8) is None
