"""Tests for ASan shadow memory."""

import pytest

from repro.runtime import ExecutionMode, Machine
from repro.runtime.shadow import AsanViolation, ShadowMemory, ShadowState


class TestPoisoning:
    def test_poison_and_query(self):
        shadow = ShadowMemory(Machine())
        shadow.poison(0x1000, 32, ShadowState.HEAP_REDZONE)
        assert shadow.is_poisoned(0x1000)
        assert shadow.is_poisoned(0x101F)
        assert not shadow.is_poisoned(0x1020)

    def test_unpoison(self):
        shadow = ShadowMemory(Machine())
        shadow.poison(0x1000, 32, ShadowState.FREED)
        shadow.unpoison(0x1000, 32)
        assert not shadow.is_poisoned(0x1000, 32)

    def test_state_of(self):
        shadow = ShadowMemory(Machine())
        shadow.poison(0x1000, 8, ShadowState.STACK_REDZONE)
        assert shadow.state_of(0x1000) == int(ShadowState.STACK_REDZONE)
        assert shadow.state_of(0x1008) == 0

    def test_zero_size_poison_is_noop(self):
        shadow = ShadowMemory(Machine())
        shadow.poison(0x1000, 0, ShadowState.FREED)
        assert not shadow.is_poisoned(0x1000)

    def test_poison_writes_shadow_bytes_to_memory(self):
        machine = Machine()
        shadow = ShadowMemory(machine)
        shadow.poison(0x1000, 8, ShadowState.HEAP_REDZONE)
        shadow_addr = machine.layout.shadow_address(0x1000)
        assert machine.load(shadow_addr, 1) == bytes(
            [ShadowState.HEAP_REDZONE]
        )


class TestChecking:
    def test_clean_access_passes(self):
        shadow = ShadowMemory(Machine())
        shadow.check_access(0x1000, 8)  # no raise

    def test_poisoned_access_raises(self):
        shadow = ShadowMemory(Machine())
        shadow.poison(0x1000, 8, ShadowState.HEAP_REDZONE)
        with pytest.raises(AsanViolation) as info:
            shadow.check_access(0x1000, 8, "write")
        assert info.value.access == "write"

    def test_access_spanning_into_poison_raises(self):
        shadow = ShadowMemory(Machine())
        shadow.poison(0x1008, 8, ShadowState.HEAP_REDZONE)
        with pytest.raises(AsanViolation):
            shadow.check_access(0x1004, 8)

    def test_trace_mode_emits_check_ops_without_raising(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        shadow = ShadowMemory(machine)
        shadow.poison(0x1000, 8, ShadowState.FREED)
        machine.take_trace()
        shadow.check_access(0x1000, 8)  # trace mode: no raise
        trace = machine.take_trace()
        # One granule -> shadow load + compare + branch.
        assert len(trace) == 3

    def test_check_counts(self):
        shadow = ShadowMemory(Machine())
        shadow.check_access(0x1000, 8)
        shadow.check_access(0x2000, 16)  # two granules
        assert shadow.check_ops == 3
