"""Tests for the Mini-C parser."""

import pytest

from repro.core import RestException
from repro.defenses import PlainDefense, RestDefense
from repro.lang import Interpreter
from repro.lang.ast import ArrayDecl, BinOp, Const, For, Load, Store, Var
from repro.lang.parser import ParseError, parse
from repro.runtime import Machine


def run(source, defense=None, *args):
    defense = defense or PlainDefense(Machine())
    return Interpreter(parse(source), defense).run(*args)


class TestParsing:
    def test_minimal_main(self):
        assert run("int main() { return 42; }") == 42

    def test_arithmetic_precedence(self):
        assert run("int main() { return 2 + 3 * 4; }") == 14
        assert run("int main() { return (2 + 3) * 4; }") == 20
        assert run("int main() { return 17 / 5 + 17 % 5; }") == 5

    def test_hex_literals(self):
        assert run("int main() { return 0x10; }") == 16

    def test_comments_ignored(self):
        assert run(
            "int main() { // the answer\n  return 42; // here\n}"
        ) == 42

    def test_scalar_declaration_and_assignment(self):
        source = """
        int main() {
            int x = 5;
            x = x + 1;
            return x;
        }
        """
        assert run(source) == 6

    def test_array_declaration_hoisted(self):
        program = parse("""
        int main() {
            int buf[8];
            buf[0] = 7;
            return buf[0];
        }
        """)
        assert program.function("main").arrays == (ArrayDecl("buf", 8),)
        assert Interpreter(program, PlainDefense(Machine())).run() == 7

    def test_if_else(self):
        source = """
        int main(int x) {
            if (x < 10) { return 1; } else { return 2; }
        }
        """
        assert run(source, None, 5) == 1
        assert run(source, None, 15) == 2

    def test_while_loop(self):
        source = """
        int main() {
            int i = 0;
            int total = 0;
            while (i < 5) { total = total + i; i = i + 1; }
            return total;
        }
        """
        assert run(source) == 10

    def test_for_loop_ast_shape(self):
        program = parse("""
        int main() {
            int buf[4];
            for (i = 0; i < 4; i++) { buf[i] = i; }
            return buf[3];
        }
        """)
        loop = program.function("main").body[0]
        assert isinstance(loop, For) and loop.var == "i"
        assert run("""
        int main() {
            int buf[4];
            for (i = 0; i < 4; i++) { buf[i] = i; }
            return buf[3];
        }
        """) == 3

    def test_functions_and_calls(self):
        source = """
        int add(int a, int b) { return a + b; }
        int main() { return add(40, 2); }
        """
        assert run(source) == 42

    def test_malloc_free_memcpy(self):
        source = """
        int main() {
            int src = malloc(64);
            int dst = malloc(64);
            src[1] = 99;
            memcpy(dst, src, 64);
            int v = dst[1];
            free(src);
            free(dst);
            return v;
        }
        """
        assert run(source) == 99

    def test_call_as_statement(self):
        source = """
        int poke(int p) { p[0] = 1; return 0; }
        int main() {
            int buf = malloc(32);
            poke(buf);
            return buf[0];
        }
        """
        assert run(source) == 1


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "",  # empty
            "int main( { return 0; }",  # bad params
            "int main() { return 0 }",  # missing semicolon
            "int main() { x ; }",  # bare ident
            "int main() { for (i = 0; j < 4; i++) {} }",  # mixed loop var
            "int main() { return $; }",  # bad character
            "main() { return 0; }",  # missing type
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse(source)


class TestParsedListing1:
    SOURCE = """
    // Listing 1, in Mini-C surface syntax.
    int tls1_process_heartbeat(int request, int payload_claim) {
        int response = malloc(payload_claim * 8);
        memcpy(response, request, payload_claim * 8);   // the bug
        return response[18];
    }

    int main() {
        int request = malloc(128);
        int secrets = malloc(128);
        for (i = 0; i < 16; i++) { request[i] = 0x4842; }
        for (i = 0; i < 16; i++) { secrets[i] = 0x534543524554; }
        return tls1_process_heartbeat(request, 128);
    }
    """

    def test_leaks_under_plain(self):
        assert run(self.SOURCE) == 0x534543524554

    def test_caught_by_rest(self):
        with pytest.raises(RestException):
            run(self.SOURCE, RestDefense(Machine(), protect_stack=False))

    def test_stack_sweep_from_source(self):
        source = """
        int main() {
            int buf[8];
            int total = 0;
            for (i = 0; i < 24; i++) { total = total + buf[i]; }
            return total;
        }
        """
        run(source)  # plain: reads past the array silently
        with pytest.raises(RestException):
            run(source, RestDefense(Machine()))
