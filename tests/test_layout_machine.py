"""Tests for the address-space layout and the Machine abstraction."""

import pytest

from repro.cpu import OpType
from repro.runtime import ExecutionMode, Machine
from repro.runtime.layout import AddressSpaceLayout


class TestLayout:
    def test_regions_disjoint(self):
        AddressSpaceLayout().validate()

    def test_shadow_mapping_function(self):
        layout = AddressSpaceLayout()
        # f(addr) = (addr >> 3) + offset (paper Figure 2)
        assert layout.shadow_address(0) == layout.shadow_offset
        assert layout.shadow_address(8) == layout.shadow_offset + 1
        assert layout.shadow_address(64) == layout.shadow_offset + 8

    def test_region_predicates(self):
        layout = AddressSpaceLayout()
        assert layout.in_heap(layout.heap_base)
        assert not layout.in_heap(layout.heap_end)
        assert layout.in_stack(layout.stack_top - 8)
        assert not layout.in_stack(layout.stack_top)
        assert layout.in_shadow(layout.shadow_address(layout.heap_base))

    def test_overlapping_layout_rejected(self):
        bad = AddressSpaceLayout(heap_base=0x40_0000, heap_size=0x100_0000)
        with pytest.raises(ValueError):
            bad.validate()


class TestMachineFunctional:
    def test_load_store_roundtrip(self):
        machine = Machine()
        machine.store(0x1000, b"data")
        assert machine.load(0x1000, 4) == b"data"

    def test_arm_disarm_functional(self):
        machine = Machine()
        machine.arm(0x2000)
        assert machine.hierarchy.is_armed(0x2000)
        machine.disarm(0x2000)
        assert not machine.hierarchy.is_armed(0x2000)

    def test_compute_is_noop_functionally(self):
        machine = Machine()
        machine.compute(5)
        assert machine.trace == []


class TestMachineTrace:
    def test_ops_accumulate(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        machine.load(0x1000, 8)
        machine.store(0x2000, size=8)
        machine.arm(0x3000)
        machine.disarm(0x3000)
        machine.compute(2)
        ops = [u.op for u in machine.trace]
        assert ops == [
            OpType.LOAD,
            OpType.STORE,
            OpType.ARM,
            OpType.DISARM,
            OpType.ALU,
            OpType.ALU,
        ]

    def test_trace_mode_returns_zero_data(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        assert machine.load(0x1000, 4) == b"\x00" * 4

    def test_take_trace_detaches(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        machine.compute(3)
        trace = machine.take_trace()
        assert len(trace) == 3
        assert machine.trace == []

    def test_perfect_hw_lowers_arm_to_store(self):
        """Paper §VI-B: PerfectHW replaces arm/disarm by one store each."""
        machine = Machine(mode=ExecutionMode.TRACE, perfect_hw=True)
        machine.arm(0x1000)
        machine.disarm(0x1000)
        assert [u.op for u in machine.trace] == [OpType.STORE, OpType.STORE]

    def test_call_ret_update_pc(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        start = machine._pc
        machine.call(0x5000)
        assert machine._pc == 0x5000
        machine.ret(start)
        assert machine._pc == start
        assert [u.op for u in machine.trace] == [OpType.CALL, OpType.RET]

    def test_compare_and_branch_shape(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        machine.load(0x1000, 1)
        machine.compare_and_branch(taken=False)
        ops = [u.op for u in machine.trace]
        assert ops == [OpType.LOAD, OpType.ALU, OpType.BRANCH]
        # The compare depends on the load; the branch on the compare.
        assert machine.trace[1].deps == (1,)
        assert machine.trace[2].deps == (1,)
