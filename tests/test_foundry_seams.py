"""Cross-seam checks: generated cases land in REST's documented gaps.

The paper (§V-C) concedes two spatial false negatives for 64-byte
token granularity: overflows that *land in the alignment pad* between
the payload and the first token, and accesses *narrower than a token*
that stay inside the slot.  These tests take generated cases from the
``pad_landing`` and ``subtoken`` families and execute them directly
with ``run_case``, asserting the documented asymmetry per defense:

* pad landings:  ASan's byte-granular redzone catches them (DETECTED),
  REST's token granularity cannot (MISSED);
* sub-granule accesses (within the 8-byte ASan granule): *both*
  detectors miss — this is the floor of redzone-based checking;
* narrow pad accesses (past the granule but short of the token): ASan
  catches, REST misses.

Every assertion also checks ``matches_expected`` so the generator's
oracle and the observed hardware agree case-by-case.
"""

import pytest

from repro.foundry.executor import run_case
from repro.foundry.generator import generate_corpus


def _cases(family, count=10, seed=21):
    return generate_corpus(seed, count, families=[family])


def _outcome(case, defense):
    record = run_case(case, defense)
    assert record["matches_expected"], (
        f"{case.case_id} [{defense}]: expected {record['expected']}, "
        f"got {record['outcome']} ({record['detail']})"
    )
    return record["outcome"]


class TestPadLandingSeam:
    """Overflow into the alignment pad below the first REST token."""

    @pytest.mark.parametrize("case", _cases("pad_landing"),
                             ids=lambda c: c.case_id)
    def test_rest_misses_asan_catches(self, case):
        assert _outcome(case, "rest") == "missed"
        assert _outcome(case, "softrest") == "missed"
        assert _outcome(case, "asan") == "detected"
        assert _outcome(case, "none") == "missed"


class TestSubtokenSeam:
    """Accesses narrower than the detection granule(s)."""

    @pytest.mark.parametrize(
        "case",
        [c for c in _cases("subtoken", count=16)
         if c.params["variant"] == "subgranule"],
        ids=lambda c: c.case_id,
    )
    def test_subgranule_evades_both(self, case):
        # Inside the 8-byte ASan granule: below every detector's floor.
        assert _outcome(case, "rest") == "missed"
        assert _outcome(case, "asan") == "missed"

    @pytest.mark.parametrize(
        "case",
        [c for c in _cases("subtoken", count=16)
         if c.params["variant"] == "narrow_pad"],
        ids=lambda c: c.case_id,
    )
    def test_narrow_pad_is_asan_only(self, case):
        # Past the granule but short of the token: ASan's redzone
        # starts at the granule boundary, REST's token 64 bytes up.
        assert _outcome(case, "rest") == "missed"
        assert _outcome(case, "asan") == "detected"


class TestSeamVariety:
    def test_both_subtoken_variants_generated(self):
        variants = {c.params["variant"] for c in _cases("subtoken", count=16)}
        assert variants == {"subgranule", "narrow_pad"}
