"""Targeted tests for less-travelled paths across the stack."""

import pytest

from repro.cache import Cache, CacheConfig, MemoryHierarchy
from repro.cache.hierarchy import HierarchyConfig
from repro.core import Mode, RestException, Token, TokenConfigRegister
from repro.cpu import CoreConfig, OutOfOrderCore
from repro.cpu.isa import MicroOp, OpType, alu, arm_op, disarm_op, load, store
from repro.os import Kernel, TokenSwitchPolicy
from repro.runtime import ExecutionMode, Libc, Machine


class TestCacheEdges:
    def test_victim_address_reconstruction_all_sets(self):
        cache = Cache(CacheConfig(name="t", size=2048, associativity=2))
        stride = cache.config.num_sets * 64
        for set_index in range(cache.config.num_sets):
            base = set_index * 64
            cache.install(base)
            cache.install(base + stride)
            _, victim = cache.install(base + 2 * stride)
            assert victim is not None
            assert cache.victim_address(base + 2 * stride, victim) == base

    def test_token_eviction_stat(self):
        cache = Cache(CacheConfig(name="t", size=512, associativity=2))
        stride = cache.config.num_sets * 64
        cache.install(0, token_bits=1)
        cache.install(stride)
        cache.install(2 * stride)
        assert cache.stats.token_evictions == 1

    def test_install_counts_token_fills(self):
        cache = Cache(CacheConfig())
        cache.install(0x1000, token_bits=0b11)
        assert cache.stats.token_fills == 1


class TestHierarchyEdges:
    def test_three_line_spanning_write(self):
        h = MemoryHierarchy()
        data = bytes(range(130)) + b"\x00" * 30
        h.write(0x1030, data[:160])
        got, _ = h.read(0x1030, 160)
        assert got == data[:160]

    def test_narrow_token_disarm_zeroes_only_slot(self):
        register = TokenConfigRegister(Token.random(16, seed=2))
        h = MemoryHierarchy(token_config=register)
        h.write(0x1000, b"A" * 16)
        h.write(0x1020, b"C" * 16)
        h.arm(0x1010)
        h.disarm(0x1010)
        assert h.read(0x1000, 16)[0] == b"A" * 16
        assert h.read(0x1010, 16)[0] == b"\x00" * 16
        assert h.read(0x1020, 16)[0] == b"C" * 16

    def test_writeback_all_multiple_slots(self):
        register = TokenConfigRegister(Token.random(16, seed=2))
        h = MemoryHierarchy(token_config=register)
        h.arm(0x1000)
        h.arm(0x1030)
        h.writeback_all()
        token = register.token_for_hardware()
        assert h.backing.read(0x1000, 16) == token.value
        assert h.backing.read(0x1030, 16) == token.value
        assert h.backing.read(0x1010, 16) != token.value

    def test_l1i_stats_accumulate(self):
        h = MemoryHierarchy()
        assert h.fetch_line(0x400000) > 0  # cold miss stalls
        assert h.fetch_line(0x400004) == 0  # same line hits
        assert h.fetch_line(0x400040) == 0  # next line was prefetched
        assert h.l1i.stats.hits == 2
        assert h.l1i.stats.misses == 1

    def test_mshr_structural_stall_counted(self):
        config = HierarchyConfig(
            l1d=CacheConfig(
                name="L1-D",
                size=512,
                associativity=2,
                mshr_registers=1,
                mshr_entries=1,
            )
        )
        h = MemoryHierarchy(config=config)
        for i in range(8):
            h.read(0x10000 + 64 * i, 8)
        # Single MSHR: the model recycles it but accounts the pressure.
        assert h.l1d.mshrs.allocations >= 8


class TestPipelineEdges:
    def _core(self, **config_kwargs):
        config = CoreConfig(**config_kwargs) if config_kwargs else None
        return OutOfOrderCore(MemoryHierarchy(), config=config)

    def test_rob_full_counted_with_tiny_rob(self):
        core = self._core(rob_entries=4, iq_entries=64)
        # Long-latency loads back the tiny ROB up.
        trace = [load(0x100000 + 4096 * i, 8) for i in range(30)]
        trace += [alu() for _ in range(100)]
        stats = core.run(trace)
        assert stats.rob_full_cycles > 0

    def test_sq_full_counted(self):
        core = self._core(sq_entries=2, rob_entries=192)
        trace = [store(0x200000 + 4096 * i, 8) for i in range(40)]
        stats = core.run(trace)
        assert stats.sq_full_cycles > 0

    def test_lq_full_counted(self):
        core = self._core(lq_entries=2, rob_entries=192)
        trace = [load(0x300000 + 4096 * i, 8) for i in range(40)]
        stats = core.run(trace)
        assert stats.lq_full_cycles > 0

    def test_serialize_ablation_still_correct(self):
        """Serialized arm/disarm: slower, but token semantics intact."""
        from dataclasses import replace

        core = OutOfOrderCore(
            MemoryHierarchy(),
            config=replace(CoreConfig(), serialize_rest_ops=True),
        )
        trace = [arm_op(0x4000), alu(), alu(), disarm_op(0x4000), alu()]
        stats = core.run(trace)
        assert stats.committed == 5
        assert not core.hierarchy.is_armed(0x4000)

    def test_icache_stall_stat_populated(self):
        core = self._core()
        trace = [
            MicroOp(OpType.ALU, pc=0x400000 + 4 * i) for i in range(500)
        ]
        stats = core.run(trace)
        assert stats.icache_stall_cycles > 0

    def test_stats_merge(self):
        from repro.cpu.stats import CoreStats

        a = CoreStats(cycles=10, committed=5, op_counts={"alu": 5})
        b = CoreStats(cycles=20, committed=7, op_counts={"alu": 3, "load": 4})
        a.merge_from(b)
        assert a.cycles == 30 and a.committed == 12
        assert a.op_counts == {"alu": 8, "load": 4}


class TestKernelEdges:
    def test_single_policy_fork_does_not_rekey(self):
        kernel = Kernel(policy=TokenSwitchPolicy.SINGLE)
        parent = kernel.spawn()
        kernel.hierarchy.arm(parent.arena_base)
        child = kernel.fork(parent)
        assert child.token == parent.token
        kernel.switch_to(child)
        # Same token value system-wide: inherited token still trips.
        with pytest.raises(RestException):
            kernel.hierarchy.read(child.arena_base, 8)

    def test_single_policy_switch_is_cheap(self):
        kernel = Kernel(policy=TokenSwitchPolicy.SINGLE)
        a = kernel.spawn()
        b = kernel.spawn()
        register = kernel.hierarchy.token_config
        token_before = register.token_for_hardware()
        kernel.switch_to(a)
        assert register.token_for_hardware() == token_before


class TestLibcEdges:
    def test_memmove_backward_overlap(self):
        machine = Machine()
        libc = Libc(machine)
        machine.store(0x1000, b"abcdefghij")
        libc.memmove(0x0FFE, 0x1000, 10)  # dst < src: forward copy path
        assert machine.load(0x0FFE, 10) == b"abcdefghij"

    def test_memcmp_prefix_difference(self):
        machine = Machine()
        libc = Libc(machine)
        machine.store(0x1000, b"\x01" + b"Z" * 15)
        machine.store(0x2000, b"\x02" + b"Z" * 15)
        assert libc.memcmp(0x1000, 0x2000, 16) == -1

    def test_memset_zero_length(self):
        machine = Machine()
        Libc(machine).memset(0x1000, 0xFF, 0)
        assert machine.load(0x1000, 4) == b"\x00" * 4


class TestMachineEdges:
    def test_trace_mode_without_hierarchy(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        assert machine.hierarchy is None
        assert machine.token_width == 64  # default without hardware

    def test_branch_uses_current_pc_by_default(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        machine.set_pc(0x1234)
        machine.branch(True)
        assert machine.take_trace()[0].pc == 0x1234

    def test_pc_advances_per_emit(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        machine.set_pc(0x1000)
        machine.compute(3)
        pcs = [u.pc for u in machine.take_trace()]
        assert pcs == [0x1000, 0x1004, 0x1008]


class TestRunAllDriver:
    def test_run_all_writes_outputs(self, tmp_path, monkeypatch):
        from repro.experiments import run_all as driver

        monkeypatch.setattr(
            driver, "EXPERIMENT_SCALES", {"table2": None, "table1": None}
        )
        out = driver.run_all(tmp_path / "results", scale=0.05)
        assert (out / "table2.txt").exists()
        assert (out / "table1.txt").exists()
        manifest = (out / "manifest.json").read_text()
        assert "table2" in manifest
