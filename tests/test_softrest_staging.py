"""Tests for the SoftREST ablation defense and the token staging buffer."""

import pytest

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core import RestException
from repro.cpu import OpType
from repro.defenses import SoftRestDefense
from repro.runtime import ExecutionMode, Machine


class TestSoftRest:
    def test_trace_machine_flag_required(self):
        machine = Machine(mode=ExecutionMode.TRACE)  # no software_rest
        with pytest.raises(ValueError):
            SoftRestDefense(machine)

    def test_flags_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Machine(
                mode=ExecutionMode.TRACE,
                perfect_hw=True,
                software_rest=True,
            )

    def test_arm_lowers_to_full_width_stores(self):
        machine = Machine(mode=ExecutionMode.TRACE, software_rest=True)
        machine.arm(0x1000)
        trace = machine.take_trace()
        stores = [u for u in trace if u.op is OpType.STORE]
        assert len(stores) == 8  # 64B token over an 8B bus
        assert stores[0].address == 0x1000 and stores[-1].address == 0x1038

    def test_disarm_lowers_to_verify_and_zero(self):
        machine = Machine(mode=ExecutionMode.TRACE, software_rest=True)
        machine.disarm(0x1000)
        trace = machine.take_trace()
        loads = sum(1 for u in trace if u.op is OpType.LOAD)
        stores = sum(1 for u in trace if u.op is OpType.STORE)
        assert loads == 8 and stores == 8

    def test_access_check_shape(self):
        machine = Machine(mode=ExecutionMode.TRACE, software_rest=True)
        defense = SoftRestDefense(machine)
        machine.take_trace()
        defense.load(0x5008, 8)
        trace = machine.take_trace()
        # width/8 slot loads + compares + branch + the actual load.
        loads = sum(1 for u in trace if u.op is OpType.LOAD)
        assert loads == 8 + 1
        assert any(u.op is OpType.BRANCH for u in trace)
        assert defense.checks_emitted == 1

    def test_functional_mode_protection_intact(self):
        """Functionally the scheme is REST: the hierarchy still checks."""
        defense = SoftRestDefense(Machine())
        ptr = defense.malloc(64)
        with pytest.raises(RestException):
            defense.load(ptr + 64, 8)


class TestTokenStagingBuffer:
    def make(self, entries):
        return MemoryHierarchy(
            config=HierarchyConfig(token_staging_entries=entries)
        )

    def test_disabled_by_default(self):
        h = MemoryHierarchy()
        h.arm(0x1000)
        assert h.stats.staged_token_ops == 0

    def test_ops_absorbed_while_room(self):
        h = self.make(8)
        for i in range(4):
            h.arm(0x1000 + 64 * i)
        assert h.stats.staged_token_ops == 4
        assert h.stats.staging_full_stalls == 0

    def test_full_buffer_stalls(self):
        h = self.make(2)
        for i in range(6):
            h.read(0x1000 + 64 * i, 8)  # warm the lines: arms will hit
        latencies = [h.arm(0x1000 + 64 * i).latency for i in range(6)]
        assert h.stats.staging_full_stalls == 4
        assert latencies[-1] > latencies[0]

    def test_data_accesses_drain(self):
        h = self.make(2)
        h.arm(0x1000)
        h.arm(0x1040)
        h.read(0x9000, 8)  # drains one entry
        h.arm(0x1080)  # room again: no stall
        assert h.stats.staging_full_stalls == 0

    def test_semantics_unchanged(self):
        """The buffer is timing-only: token state applies immediately."""
        h = self.make(4)
        h.arm(0x1000)
        with pytest.raises(RestException):
            h.read(0x1000, 8)
        h.disarm(0x1000)
        h.read(0x1000, 8)
