"""Tests for exception unmaskability (paper §V-B).

"REST exceptions cannot be masked from the same privilege level" —
only privileged code may set the mask bit, and while it is set the
hardware counts suppressed faults instead of raising.
"""

import pytest

from repro.cache import MemoryHierarchy
from repro.core import (
    PrivilegeError,
    PrivilegeLevel,
    RestException,
    Token,
    TokenConfigRegister,
)


@pytest.fixture
def hierarchy():
    register = TokenConfigRegister(Token.random(64, seed=9))
    return MemoryHierarchy(token_config=register)


class TestUnmaskability:
    def test_user_level_cannot_mask(self, hierarchy):
        with pytest.raises(PrivilegeError):
            hierarchy.token_config.set_exception_mask(
                True, PrivilegeLevel.USER
            )
        assert not hierarchy.token_config.exceptions_masked

    def test_attacker_cannot_disable_own_tripwires(self, hierarchy):
        """The §V-B scenario: a compromised user process tries to turn
        off detection before sweeping memory — and cannot."""
        hierarchy.arm(0x1000)
        with pytest.raises(PrivilegeError):
            hierarchy.token_config.set_exception_mask(
                True, PrivilegeLevel.USER
            )
        with pytest.raises(RestException):
            hierarchy.read(0x1000, 8)

    def test_privileged_mask_suppresses_and_counts(self, hierarchy):
        hierarchy.arm(0x1000)
        hierarchy.token_config.set_exception_mask(
            True, PrivilegeLevel.SUPERVISOR
        )
        data, _ = hierarchy.read(0x1000, 8)  # proceeds
        assert data == b"\x00" * 8  # arm deferred: value not yet written
        assert hierarchy.stats.suppressed_faults == 1
        assert hierarchy.stats.token_faults == 0

    def test_unmask_restores_detection(self, hierarchy):
        hierarchy.arm(0x1000)
        register = hierarchy.token_config
        register.set_exception_mask(True, PrivilegeLevel.SUPERVISOR)
        hierarchy.read(0x1000, 8)
        register.set_exception_mask(False, PrivilegeLevel.SUPERVISOR)
        with pytest.raises(RestException):
            hierarchy.read(0x1000, 8)

    def test_masked_store_suppressed(self, hierarchy):
        hierarchy.arm(0x1000)
        hierarchy.token_config.set_exception_mask(
            True, PrivilegeLevel.MACHINE
        )
        hierarchy.write(0x1008, b"\xff" * 8)
        assert hierarchy.stats.suppressed_faults == 1
