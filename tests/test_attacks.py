"""The security-evaluation matrix: every attack against every defense.

This is the behavioural core of Table III's "REST" row: linear spatial
detection, temporal detection until reallocation, composability with
uninstrumented libraries — and the documented misses (targeted accesses,
pad overflows).
"""

import pytest

from repro.defenses import AsanDefense, PlainDefense, RestDefense
from repro.runtime import Machine
from repro.workloads import ATTACK_REGISTRY, AttackOutcome, run_attack


def plain():
    return PlainDefense(Machine())


def asan():
    return AsanDefense(Machine())


def rest_full():
    return RestDefense(Machine(), protect_stack=True)


def rest_heap():
    return RestDefense(Machine(), protect_stack=False)


class TestHeartbleed:
    def test_plain_leaks_secret(self):
        result = run_attack("heartbleed", plain())
        assert result.outcome is AttackOutcome.MISSED
        assert "leaked" in result.detail

    def test_asan_detects(self):
        result = run_attack("heartbleed", asan())
        assert result.detected
        assert result.detected_by == "AsanViolation"

    def test_rest_detects(self):
        result = run_attack("heartbleed", rest_full())
        assert result.detected
        assert result.detected_by == "RestException"

    def test_rest_heap_only_detects(self):
        """Legacy-binary protection still stops Heartbleed."""
        assert run_attack("heartbleed", rest_heap()).detected


class TestSpatialMatrix:
    @pytest.mark.parametrize(
        "attack",
        ["linear_heap_overflow_write", "heap_underflow_read"],
    )
    def test_heap_linear_attacks(self, attack):
        assert run_attack(attack, plain()).outcome is AttackOutcome.MISSED
        assert run_attack(attack, asan()).detected
        assert run_attack(attack, rest_full()).detected
        assert run_attack(attack, rest_heap()).detected

    @pytest.mark.parametrize(
        "attack", ["stack_linear_overflow", "stack_overread"]
    )
    def test_stack_linear_attacks(self, attack):
        assert run_attack(attack, plain()).outcome is AttackOutcome.MISSED
        assert run_attack(attack, asan()).detected
        assert run_attack(attack, rest_full()).detected
        # Heap-only REST deliberately leaves the stack unprotected.
        assert not run_attack(attack, rest_heap()).detected

    def test_targeted_corruption_missed_by_tripwires(self):
        """Table III: tripwires provide Linear, not Complete, spatial
        protection — a redzone-jumping write is invisible."""
        for factory in (plain, asan, rest_full):
            result = run_attack("targeted_corruption", factory())
            assert result.outcome is AttackOutcome.MISSED

    def test_pad_overflow_is_rests_false_negative(self):
        """§V-C: the token-alignment pad absorbs small overflows (REST
        miss); ASan's finer 8-byte granularity catches the same bug."""
        assert run_attack("pad_overflow", rest_full()).outcome is (
            AttackOutcome.MISSED
        )
        assert run_attack("pad_overflow", asan()).detected


class TestTemporalMatrix:
    @pytest.mark.parametrize(
        "attack", ["use_after_free_read", "use_after_free_write"]
    )
    def test_uaf_detected_by_both(self, attack):
        assert run_attack(attack, asan()).detected
        assert run_attack(attack, rest_full()).detected
        assert run_attack(attack, rest_heap()).detected

    def test_uaf_missed_by_plain(self):
        result = run_attack("use_after_free_read", plain())
        assert result.outcome is AttackOutcome.MISSED

    def test_double_free(self):
        assert run_attack("double_free", asan()).detected
        assert run_attack("double_free", rest_full()).detected
        assert not run_attack("double_free", plain()).detected

    def test_uaf_after_reallocation_missed_by_all(self):
        """Table III: temporal protection lasts only 'until realloc'."""
        for factory in (plain, asan, rest_full):
            result = run_attack("uaf_after_reallocation", factory())
            assert result.outcome is AttackOutcome.MISSED, result

    def test_uninitialized_leak_prevented_by_rest_only(self):
        """REST's zeroed free pool stops stale-data leaks (§IV-A)."""
        assert (
            run_attack("uninitialized_heap_leak", plain()).outcome
            is AttackOutcome.MISSED
        )
        assert (
            run_attack("uninitialized_heap_leak", asan()).outcome
            is AttackOutcome.MISSED
        )
        assert (
            run_attack("uninitialized_heap_leak", rest_full()).outcome
            is AttackOutcome.PREVENTED
        )


class TestRestHardening:
    def test_brute_force_disarm_faults(self):
        result = run_attack("brute_force_disarm", rest_full())
        assert result.detected

    def test_brute_force_disarm_na_elsewhere(self):
        result = run_attack("brute_force_disarm", asan())
        assert result.outcome is AttackOutcome.NOT_APPLICABLE

    def test_token_forgery_fails(self):
        result = run_attack("token_forgery", rest_full())
        assert result.outcome is AttackOutcome.PREVENTED

    def test_library_overflow_composability(self):
        """§V-C: uninstrumented library code — ASan blind, REST catches."""
        assert (
            run_attack("library_overflow", asan()).outcome
            is AttackOutcome.MISSED
        )
        assert run_attack("library_overflow", rest_full()).detected
        assert run_attack("library_overflow", rest_heap()).detected

    def test_syscall_confused_deputy(self):
        """§V-C: token exceptions fire at every privilege level."""
        assert run_attack("syscall_confused_deputy", rest_full()).detected
        assert (
            run_attack("syscall_confused_deputy", asan()).outcome
            is AttackOutcome.MISSED
        )


class TestRegistry:
    def test_all_attacks_registered_and_runnable_against_rest(self):
        for name in ATTACK_REGISTRY:
            result = run_attack(name, rest_full())
            assert result.attack == name
            assert result.outcome in AttackOutcome

    def test_unknown_attack_raises(self):
        with pytest.raises(KeyError):
            run_attack("nonexistent", rest_full())
