"""Tests for the differential trace profiler (repro.obs.diff).

Covers the anchor-and-resync aligner, the per-PC apportionment
invariant (column sums equal the aggregate buckets exactly, under
hypothesis-generated carriers and clamped buckets), the committed
stream identity checks, the canonical trace-diff/v1 artifact
(determinism, token-site attribution), the fast-tier per-block
validation mode, and the CLI surface.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.diff import (
    CAUSE_BUCKET,
    UNATTRIBUTED_PC,
    align_streams,
    build_fast_tier_diff,
    build_trace_diff,
    check_commit_invariants,
    committed_stream,
    per_pc_attribution,
    render_diff_text,
    render_fast_tier_text,
    write_trace_diff,
)
from repro.obs.stalls import STALL_BUCKETS, largest_remainder


class TestAlignment:
    def test_identical_streams_fully_pair(self):
        keys = [(0x400, "alu"), (0x404, "load"), (0x408, "store")] * 5
        result = align_streams(keys, list(keys))
        assert result["pairs"] == [(i, i) for i in range(len(keys))]
        assert result["a_only"] == [] and result["b_only"] == []
        assert result["resyncs"] == 0

    def test_insertions_in_b_go_one_sided(self):
        a = [(pc, "alu") for pc in range(10)]
        b = a[:4] + [(99, "arm"), (99, "arm")] + a[4:]
        result = align_streams(a, b)
        assert len(result["pairs"]) == 10
        assert result["a_only"] == []
        assert [b[i] for i in result["b_only"]] == [(99, "arm")] * 2
        assert result["resyncs"] == 1

    def test_deletions_from_a_go_one_sided(self):
        a = [(pc, "alu") for pc in range(10)]
        b = a[:3] + a[6:]
        result = align_streams(a, b)
        assert len(result["pairs"]) == 7
        assert result["a_only"] == [3, 4, 5]
        assert result["b_only"] == []

    def test_unresyncable_tails_stay_unmatched(self):
        a = [(pc, "alu") for pc in range(5)]
        b = [(pc + 1000, "alu") for pc in range(5)]
        result = align_streams(a, b, window=8)
        assert result["pairs"] == []
        assert result["a_only"] == list(range(5))
        assert result["b_only"] == list(range(5))

    def test_alignment_is_deterministic(self):
        a = [(pc % 7, "alu") for pc in range(50)]
        b = [(pc % 7, "alu") for pc in range(3, 53)]
        assert align_streams(a, b) == align_streams(a, b)


class TestCommitInvariants:
    def test_dense_increasing_passes(self):
        commits = [
            {"kind": "commit", "cycle": i, "seq": 10 + i} for i in range(5)
        ]
        check_commit_invariants(commits)

    def test_non_increasing_raises(self):
        commits = [
            {"kind": "commit", "cycle": 0, "seq": 2},
            {"kind": "commit", "cycle": 1, "seq": 2},
        ]
        with pytest.raises(ValueError, match="strictly increasing"):
            check_commit_invariants(commits)

    def test_gap_raises_only_without_drops(self):
        commits = [
            {"kind": "commit", "cycle": 0, "seq": 0},
            {"kind": "commit", "cycle": 1, "seq": 5},
        ]
        with pytest.raises(ValueError, match="dense"):
            check_commit_invariants(commits, dropped=0)
        check_commit_invariants(commits, dropped=3)  # ring wrapped

    def test_missing_seq_raises(self):
        with pytest.raises(ValueError, match="seq"):
            check_commit_invariants([{"kind": "commit", "cycle": 0}])


def _synthetic_events(draw):
    pcs = draw(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    events = []
    cycle = 0
    n_commits = draw(st.integers(min_value=1, max_value=25))
    for seq in range(n_commits):
        cycle += draw(st.integers(min_value=0, max_value=3))
        events.append(
            {
                "kind": "commit",
                "cycle": cycle,
                "seq": seq,
                "pc": draw(st.sampled_from(pcs)),
                "op": "alu",
            }
        )
    for cause in sorted(CAUSE_BUCKET):
        for pc in pcs:
            cycles = draw(st.integers(min_value=0, max_value=50))
            if cycles:
                events.append(
                    {
                        "kind": "pcstall",
                        "cycle": cycle,
                        "cause": cause,
                        "pc": pc,
                        "cycles": cycles,
                    }
                )
    return events


@st.composite
def _attribution_case(draw):
    events = _synthetic_events(draw)
    # Aggregate buckets chosen independently of the carriers — the
    # clamped decomposition generally disagrees with the raw counters,
    # which is exactly the case apportionment must handle.
    buckets = {
        name: draw(st.integers(min_value=0, max_value=300))
        for name in STALL_BUCKETS
    }
    return events, buckets


class TestPerPcAttribution:
    @settings(max_examples=100, deadline=None)
    @given(case=_attribution_case())
    def test_columns_sum_exactly_to_buckets(self, case):
        events, buckets = case
        rows, _meta = per_pc_attribution(events, buckets)
        for name in STALL_BUCKETS:
            assert (
                sum(row[name] for row in rows.values()) == buckets[name]
            )
            assert all(row[name] >= 0 for row in rows.values())

    def test_unclamped_buckets_reproduce_raw_counts(self):
        events = [
            {"kind": "commit", "cycle": 1, "seq": 0, "pc": 4, "op": "alu"},
            {"kind": "commit", "cycle": 2, "seq": 1, "pc": 8, "op": "alu"},
            {"kind": "pcstall", "cycle": 2, "cause": "iq", "pc": 4,
             "cycles": 7},
            {"kind": "pcstall", "cycle": 2, "cause": "iq", "pc": 8,
             "cycles": 3},
        ]
        # Aggregate equals the raw carrier sum: shares must be verbatim.
        buckets = dict.fromkeys(STALL_BUCKETS, 0)
        buckets["iq_full"] = 10
        buckets["base"] = 2
        rows, _ = per_pc_attribution(events, buckets)
        assert rows[4]["iq_full"] == 7
        assert rows[8]["iq_full"] == 3
        assert rows[4]["base"] == 1 and rows[8]["base"] == 1

    def test_carrierless_mass_goes_unattributed(self):
        events = [
            {"kind": "commit", "cycle": 1, "seq": 0, "pc": 4, "op": "alu"},
        ]
        buckets = dict.fromkeys(STALL_BUCKETS, 0)
        buckets["base"] = 1
        buckets["other"] = 9  # no "rob" pcstall carrier exists
        rows, _ = per_pc_attribution(events, buckets)
        assert rows[UNATTRIBUTED_PC]["other"] == 9
        assert sum(row["other"] for row in rows.values()) == 9

    def test_lq_and_sq_merge_into_lsq_full(self):
        events = [
            {"kind": "commit", "cycle": 1, "seq": 0, "pc": 4, "op": "alu"},
            {"kind": "pcstall", "cycle": 1, "cause": "lq", "pc": 4,
             "cycles": 6},
            {"kind": "pcstall", "cycle": 1, "cause": "sq", "pc": 4,
             "cycles": 4},
        ]
        buckets = dict.fromkeys(STALL_BUCKETS, 0)
        buckets["lsq_full"] = 10
        buckets["base"] = 1
        rows, _ = per_pc_attribution(events, buckets)
        assert rows[4]["lsq_full"] == 10


@pytest.fixture(scope="module")
def diff_run(tmp_path_factory):
    """Observed plain + rest-debug run with events, plus the diff."""
    from repro.obs.runner import run_observed

    outdir = tmp_path_factory.mktemp("diffrun")
    payload = run_observed(
        outdir,
        modes=["plain", "rest-debug"],
        scale=0.03,
        seed=7,
        interval=500,
        ring_capacity=1 << 20,
        events=True,
        o3=True,
        diff=("plain", "rest-debug"),
    )
    return outdir, payload


class TestTraceDiffArtifact:
    def test_runner_wrote_artifact(self, diff_run):
        outdir, payload = diff_run
        assert payload["diff_file"] == "trace-diff.json"
        artifact = json.loads((outdir / "trace-diff.json").read_text())
        assert artifact["format"] == "trace-diff/v1"
        assert artifact["kind"] == "modes"

    def test_per_pc_sums_match_run_json_buckets(self, diff_run):
        outdir, _ = diff_run
        artifact = json.loads((outdir / "trace-diff.json").read_text())
        run = json.loads((outdir / "run.json").read_text())
        for mode in ("plain", "rest-debug"):
            aggregate = run["modes"][mode]["buckets"]
            per_pc = artifact["modes"][mode]["per_pc"]
            for name in STALL_BUCKETS:
                assert (
                    sum(row["buckets"][name] for row in per_pc)
                    == aggregate[name]
                ), (mode, name)

    def test_artifact_is_byte_deterministic(self, diff_run, tmp_path):
        outdir, _ = diff_run
        first = build_trace_diff(outdir, "plain", "rest-debug")
        second = build_trace_diff(outdir, "plain", "rest-debug")
        write_trace_diff(first, tmp_path / "one.json")
        write_trace_diff(second, tmp_path / "two.json")
        assert (
            (tmp_path / "one.json").read_bytes()
            == (tmp_path / "two.json").read_bytes()
        )
        # And identical to what the runner wrote during the run.
        assert (
            (tmp_path / "one.json").read_bytes()
            == (outdir / "trace-diff.json").read_bytes()
        )

    def test_alignment_isolates_defense_insertions(self, diff_run):
        outdir, _ = diff_run
        artifact = json.loads((outdir / "trace-diff.json").read_text())
        alignment = artifact["alignment"]
        assert alignment["pairs"] > 0
        # rest-debug inserts arm/disarm ops plain never commits.
        assert alignment["b_only_ops"].get("arm", 0) > 0
        assert "arm" not in alignment["a_only_ops"]

    def test_rob_store_delta_lands_on_token_sites(self, diff_run):
        """Debug mode's headline mechanism (ROB head blocked on a
        store) must be attributed to store-like PCs — the arm/disarm
        and redzone-adjacent store sites the paper discusses."""
        outdir, _ = diff_run
        artifact = json.loads((outdir / "trace-diff.json").read_text())
        per_pc = artifact["modes"]["rest-debug"]["per_pc"]
        carriers = [
            row for row in per_pc if row["buckets"]["rob_store_blocked"]
        ]
        assert carriers, "rest-debug must have rob-store stalls"
        heaviest = max(
            carriers, key=lambda r: r["buckets"]["rob_store_blocked"]
        )
        assert set(heaviest["ops"]) & {"arm", "disarm", "store"}

    def test_timeline_and_render(self, diff_run):
        outdir, _ = diff_run
        artifact = json.loads((outdir / "trace-diff.json").read_text())
        points = artifact["timeline"]["points"]
        assert points and all(isinstance(p, int) for p in points)
        text = "\n".join(render_diff_text(artifact))
        assert "trace diff — plain vs rest-debug" in text
        assert "delta by stall bucket" in text
        assert "top delta PCs" in text

    def test_report_includes_diff_sections(self, diff_run):
        from repro.obs.report import render_html, render_text

        outdir, _ = diff_run
        text = render_text(outdir)
        assert "trace diff — plain vs rest-debug" in text
        html = render_html(outdir)
        assert "trace diff" in html and "top delta PCs" in html

    def test_unknown_mode_rejected(self, diff_run):
        outdir, _ = diff_run
        with pytest.raises(ValueError, match="not in run.json"):
            build_trace_diff(outdir, "plain", "asan")

    def test_fast_tier_run_rejected(self, tmp_path):
        (tmp_path / "run.json").write_text(
            json.dumps({"tier": "fast", "modes": {}})
        )
        with pytest.raises(ValueError, match="fast tier"):
            build_trace_diff(tmp_path, "plain", "rest-debug")

    def test_missing_events_file_rejected(self, diff_run, tmp_path):
        outdir, _ = diff_run
        run = json.loads((outdir / "run.json").read_text())
        (tmp_path / "run.json").write_text(json.dumps(run))
        with pytest.raises(FileNotFoundError):
            build_trace_diff(tmp_path, "plain", "rest-debug")


class TestFastTierDiff:
    @pytest.fixture(scope="class")
    def artifact(self):
        # Big enough to leave post-slice blocks to score (the fast
        # tier degenerates to all-slice below ~12k uops).
        return build_fast_tier_diff(scale=0.4, seed=1234)

    def test_scores_post_slice_blocks(self, artifact):
        blocks = artifact["blocks"]
        assert blocks["scored"] > 0
        assert blocks["scored"] == blocks["total"] - blocks["slice"]
        assert artifact["error_pct"]["blocks"] > 0

    def test_distribution_shape(self, artifact):
        dist = artifact["error_pct"]
        for key in ("p5", "p25", "p50", "p75", "p95", "mean_abs_pct"):
            assert key in dist
        assert dist["p5"] <= dist["p50"] <= dist["p95"]
        assert sum(dist["histogram"].values()) == dist["blocks"]

    def test_end_to_end_consistent_with_declared_tolerance(self, artifact):
        """Per-block errors are wide but must cancel: the post-slice
        aggregate has to stay in the neighbourhood of the committed
        BENCH_simulator.json divergence (gated at ±10% end to end)."""
        e2e = artifact["end_to_end"]
        assert e2e["measured_post_slice_cycles"] > 0
        assert abs(e2e["divergence_pct"]) <= 15.0
        assert e2e["declared_tolerance_pct"] == 10.0

    def test_worst_blocks_sorted_by_absolute_miss(self, artifact):
        worst = artifact["worst_blocks"]
        assert worst
        misses = [
            abs(row["predicted_cycles"] - row["measured_cycles"])
            for row in worst
        ]
        assert misses == sorted(misses, reverse=True)

    def test_deterministic(self, artifact):
        again = build_fast_tier_diff(scale=0.4, seed=1234)
        assert json.dumps(artifact, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_render(self, artifact):
        text = "\n".join(render_fast_tier_text(artifact))
        assert "fast-tier validation" in text
        assert "per-block error" in text
        assert "worst-predicted blocks" in text

    def test_degenerate_scale_reports_nothing_to_score(self):
        artifact = build_fast_tier_diff(scale=0.05, seed=1234)
        assert artifact["blocks"]["scored"] == 0
        text = "\n".join(render_fast_tier_text(artifact))
        assert "nothing to score" in text


class TestDiffCli:
    def test_diff_cli_writes_artifact(self, diff_run, tmp_path, capsys):
        from repro.__main__ import main

        outdir, _ = diff_run
        out = tmp_path / "d.json"
        assert main(
            ["diff", str(outdir), "--out", str(out), "--top", "5"]
        ) == 0
        assert json.loads(out.read_text())["format"] == "trace-diff/v1"
        assert "trace diff" in capsys.readouterr().out

    def test_diff_cli_missing_dir_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["diff", str(tmp_path / "nope")]) == 2
        assert "diff failed" in capsys.readouterr().out

    def test_diff_cli_requires_dir_or_fast_tier(self, capsys):
        from repro.__main__ import main

        assert main(["diff"]) == 2
        assert "fast-tier" in capsys.readouterr().out

    def test_run_cli_rejects_diff_without_trace_out(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(
            ["run", "--outdir", str(tmp_path), "--diff", "plain",
             "rest-debug"]
        ) == 2
        assert "--trace-out" in capsys.readouterr().out

    def test_runner_rejects_diff_without_events(self, tmp_path):
        from repro.obs.runner import run_observed

        with pytest.raises(ValueError, match="event streams"):
            run_observed(
                tmp_path, modes=["plain"], scale=0.01,
                diff=("plain", "plain"),
            )


class TestCommittedStream:
    def test_filters_commits_in_order(self):
        events = [
            {"kind": "fetch", "cycle": 0, "seq": 0},
            {"kind": "commit", "cycle": 3, "seq": 0, "pc": 4},
            {"kind": "pcstall", "cycle": 5, "cause": "iq", "pc": 4,
             "cycles": 1},
            {"kind": "commit", "cycle": 4, "seq": 1, "pc": 8},
        ]
        commits = committed_stream(events)
        assert [e["seq"] for e in commits] == [0, 1]

    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=0, max_value=10**6),
            min_size=1,
            max_size=12,
        ),
        total=st.integers(min_value=0, max_value=10**6),
    )
    def test_largest_remainder_partitions_exactly(self, weights, total):
        shares = largest_remainder(weights, total)
        if not sum(weights):
            assert shares == [0] * len(weights)
        else:
            assert sum(shares) == total
            for weight, share in zip(weights, shares):
                if not weight:
                    assert share == 0
