"""Tests for the stack manager."""

import pytest

from repro.runtime import Machine
from repro.runtime.stack import StackManager, StackOverflowError


class TestFrames:
    def test_push_pop_restores_sp(self):
        stack = StackManager(Machine())
        top = stack.stack_pointer
        frame = stack.push_frame(256)
        assert stack.stack_pointer < top
        stack.pop_frame(frame)
        assert stack.stack_pointer == top

    def test_frames_grow_down(self):
        stack = StackManager(Machine())
        outer = stack.push_frame(128)
        inner = stack.push_frame(128)
        assert inner.base <= outer.top

    def test_alignment(self):
        stack = StackManager(Machine())
        frame = stack.push_frame(100, align=16)
        assert stack.stack_pointer % 16 == 0
        assert frame.size >= 100

    def test_lifo_discipline_enforced(self):
        stack = StackManager(Machine())
        outer = stack.push_frame(64)
        stack.push_frame(64)
        with pytest.raises(RuntimeError):
            stack.pop_frame(outer)

    def test_pop_empty_raises(self):
        stack = StackManager(Machine())
        with pytest.raises(RuntimeError):
            stack.pop_frame()

    def test_stack_exhaustion(self):
        machine = Machine()
        stack = StackManager(machine)
        with pytest.raises(StackOverflowError):
            for _ in range(10000):
                stack.push_frame(1 << 16)

    def test_max_depth_tracked(self):
        stack = StackManager(Machine())
        frames = [stack.push_frame(64) for _ in range(5)]
        for frame in reversed(frames):
            stack.pop_frame(frame)
        assert stack.max_depth == 5
        assert stack.depth == 0


class TestCarve:
    def test_carve_within_frame(self):
        stack = StackManager(Machine())
        frame = stack.push_frame(512)
        a = stack.carve(frame, 64, align=64)
        b = stack.carve(frame, 64, align=64)
        assert a % 64 == 0 and b % 64 == 0
        assert b + 64 <= a  # disjoint, downward
        assert frame.top <= b

    def test_carve_overflow_rejected(self):
        stack = StackManager(Machine())
        frame = stack.push_frame(128)
        with pytest.raises(StackOverflowError):
            stack.carve(frame, 4096)
