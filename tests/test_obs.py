"""Tests for the observability layer (repro.obs).

Covers the ring tracer, JSONL round-trips, O3PipeView export/format
validation, the top-down stall decomposition invariant (under
hypothesis-generated counters), sampler identity, the observed-run
driver, and both report renderers.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.stats import CoreStats
from repro.obs.o3 import (
    export_o3_pipeview,
    format_o3_record,
    o3_records,
    validate_o3_trace,
)
from repro.obs.sampler import run_sampled
from repro.obs.stalls import (
    STALL_BUCKETS,
    collect_mode_stalls,
    format_stall_line,
    stall_buckets,
    verify_buckets,
)
from repro.obs.tracer import (
    NULL_TRACER,
    RingTracer,
    Tracer,
    attach_tracer,
    read_jsonl,
    write_jsonl,
)

from tests.test_hot_path_identity import _fresh_core, _trace_for


@pytest.fixture(scope="module")
def traced_run():
    """One small rest-debug run with a recording tracer attached."""
    spec, trace = _trace_for("rest-debug", scale=0.03)
    core = _fresh_core(spec)
    tracer = attach_tracer(core, RingTracer(capacity=1 << 15))
    stats = core.run(list(trace))
    return tracer, stats


class TestRingTracer:
    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit("anything", 5, pc=1)
        assert NULL_TRACER.events() == []

    def test_emit_and_chronological_order(self):
        tracer = RingTracer(capacity=8)
        for cycle in range(5):
            tracer.emit("tick", cycle, index=cycle)
        events = tracer.events()
        assert [e["cycle"] for e in events] == [0, 1, 2, 3, 4]
        assert events[0]["kind"] == "tick"
        assert events[0]["index"] == 0
        assert tracer.emitted == 5
        assert tracer.dropped == 0

    def test_wraparound_keeps_newest_window(self):
        tracer = RingTracer(capacity=4)
        for cycle in range(10):
            tracer.emit("tick", cycle)
        assert len(tracer) == 4
        assert [e["cycle"] for e in tracer.events()] == [6, 7, 8, 9]
        assert tracer.emitted == 10
        assert tracer.dropped == 6

    def test_wraparound_multiple_times(self):
        tracer = RingTracer(capacity=3)
        for cycle in range(100):
            tracer.emit("tick", cycle)
        assert [e["cycle"] for e in tracer.events()] == [97, 98, 99]

    def test_counts_histogram(self):
        tracer = RingTracer(capacity=16)
        tracer.emit("a", 0)
        tracer.emit("b", 1)
        tracer.emit("a", 2)
        assert tracer.counts() == {"a": 2, "b": 1}

    def test_clear(self):
        tracer = RingTracer(capacity=2)
        for cycle in range(5):
            tracer.emit("tick", cycle)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.events() == []
        assert tracer.emitted == 0
        assert tracer.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        tracer = RingTracer(capacity=16)
        tracer.emit("l1d_fill", 10, address=0x1000, tokens=2)
        tracer.emit("commit", 11, seq=3, pc=0x400, op="load")
        path = tmp_path / "events.jsonl"
        assert write_jsonl(tracer.events(), path) == 2
        assert read_jsonl(path) == tracer.events()

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "a", "cycle": 1}\n\n\n')
        assert read_jsonl(path) == [{"kind": "a", "cycle": 1}]


class TestStallBuckets:
    def _stats(self, **overrides):
        stats = CoreStats()
        for name, value in overrides.items():
            setattr(stats, name, value)
        return stats

    def test_all_buckets_always_present(self):
        buckets = stall_buckets(self._stats())
        assert tuple(buckets) == STALL_BUCKETS

    def test_simple_attribution(self):
        stats = self._stats(
            cycles=100, commit_active_cycles=40, iq_full_cycles=25
        )
        buckets = stall_buckets(stats)
        assert buckets["base"] == 40
        assert buckets["iq_full"] == 25
        assert buckets["other"] == 35

    def test_priority_clamp(self):
        # Overlapping counters larger than the cycle count get clamped
        # in priority order; later causes see only what remains.
        stats = self._stats(
            cycles=50,
            commit_active_cycles=30,
            rob_blocked_by_store_cycles=30,
            icache_stall_cycles=99,
        )
        buckets = stall_buckets(stats)
        assert buckets["base"] == 30
        assert buckets["rob_store_blocked"] == 20
        assert buckets["icache"] == 0
        assert buckets["other"] == 0
        assert sum(buckets.values()) == 50

    @settings(max_examples=200, deadline=None)
    @given(
        cycles=st.integers(min_value=0, max_value=10**9),
        counters=st.lists(
            st.integers(min_value=0, max_value=10**9),
            min_size=8,
            max_size=8,
        ),
    )
    def test_buckets_sum_to_cycles_invariant(self, cycles, counters):
        stats = self._stats(
            cycles=cycles,
            commit_active_cycles=counters[0],
            rob_blocked_by_store_cycles=counters[1],
            iq_full_cycles=counters[2],
            lq_full_cycles=counters[3],
            sq_full_cycles=counters[4],
            icache_stall_cycles=counters[5],
            mispredict_stall_cycles=counters[6],
            dram_stall_cycles=counters[7],
        )
        buckets = verify_buckets(stats)  # raises on sum mismatch
        assert sum(buckets.values()) == cycles
        assert all(value >= 0 for value in buckets.values())

    def test_format_stall_line_elides_zero_buckets(self):
        stats = self._stats(cycles=100, commit_active_cycles=100)
        line = format_stall_line(stats)
        assert line == "stalls: base 100.0%"

    def test_format_stall_line_no_cycles(self):
        assert format_stall_line(self._stats()) == "stalls: no cycles"

    @settings(max_examples=200, deadline=None)
    @given(
        cycles=st.integers(min_value=1, max_value=10**9),
        counters=st.lists(
            st.integers(min_value=0, max_value=10**9),
            min_size=8,
            max_size=8,
        ),
    )
    def test_format_stall_line_percentages_sum_to_100(
        self, cycles, counters
    ):
        """The displayed tenths are largest-remainder rounded, so they
        sum to exactly 100.0% — never 99.9 or 100.1."""
        import re

        stats = self._stats(
            cycles=cycles,
            commit_active_cycles=counters[0],
            rob_blocked_by_store_cycles=counters[1],
            iq_full_cycles=counters[2],
            lq_full_cycles=counters[3],
            sq_full_cycles=counters[4],
            icache_stall_cycles=counters[5],
            mispredict_stall_cycles=counters[6],
            dram_stall_cycles=counters[7],
        )
        line = format_stall_line(stats)
        shown = re.findall(r"(\d+)\.(\d)%", line)
        assert shown, line
        tenths = [int(whole) * 10 + int(frac) for whole, frac in shown]
        assert sum(tenths) == 1000

    def test_verify_buckets_raises_on_violation(self):
        class Unstable:
            # cycles changes between the decomposition and the check —
            # the only way the sum-to-cycles invariant can break.
            commit_active_cycles = 0
            rob_blocked_by_store_cycles = 0
            iq_full_cycles = 0
            lq_full_cycles = 0
            sq_full_cycles = 0
            icache_stall_cycles = 0
            mispredict_stall_cycles = 0
            dram_stall_cycles = 0

            def __init__(self):
                self._reads = 0

            @property
            def cycles(self):
                self._reads += 1
                return 100 if self._reads == 1 else 200

        with pytest.raises(AssertionError):
            verify_buckets(Unstable())

    def test_real_run_satisfies_invariant(self, traced_run):
        _, stats = traced_run
        buckets = verify_buckets(stats)
        assert buckets["base"] > 0  # some cycles did useful work


class TestSampler:
    def test_sampled_stats_identical_to_plain_run(self):
        spec, trace = _trace_for("rest-secure", scale=0.03)
        plain = _fresh_core(spec)
        expected = plain.run(list(trace))

        sampled_core = _fresh_core(spec)
        stats, samples = run_sampled(
            sampled_core, list(trace), interval=500
        )
        assert stats == expected  # CoreStats dataclass: full equality
        assert samples, "a multi-thousand-cycle run must produce samples"

    def test_sample_shape_and_monotonic_cycles(self):
        spec, trace = _trace_for("plain", scale=0.03)
        _, samples = run_sampled(_fresh_core(spec), list(trace), interval=300)
        cycles = [s["cycle"] for s in samples]
        assert cycles == sorted(cycles)
        for sample in samples:
            assert sample["window_cycles"] > 0
            assert 0.0 <= sample["l1d_miss_rate"] <= 1.0
            for key in ("ipc", "rob", "iq", "lq", "sq", "token_ops"):
                assert key in sample

    def test_rejects_nonpositive_interval(self):
        spec, trace = _trace_for("plain", scale=0.01)
        with pytest.raises(ValueError):
            run_sampled(_fresh_core(spec), list(trace), interval=0)


class TestO3PipeView:
    def _record(self, **overrides):
        record = {
            "seq": 1,
            "pc": 0x400,
            "op": "alu",
            "fetch": 1,
            "dispatch": 2,
            "issue": 3,
            "complete": 4,
            "retire": 5,
            "store_done": 0,
        }
        record.update(overrides)
        return record

    def test_format_is_seven_valid_lines(self):
        text = format_o3_record(self._record())
        assert validate_o3_trace(text) == 1
        lines = text.splitlines()
        assert lines[0] == "O3PipeView:fetch:1000:0x00000400:0:1:alu"
        assert lines[-1] == "O3PipeView:retire:5000:store:0"

    def test_store_completion_tick(self):
        text = format_o3_record(self._record(store_done=5))
        assert text.splitlines()[-1] == "O3PipeView:retire:5000:store:5000"

    def test_records_drop_incomplete(self):
        events = [
            {"kind": "fetch", "cycle": 1, "pc": 0x400, "op": "alu"},
            {"kind": "dispatch", "cycle": 2, "seq": 1, "pc": 0x400,
             "op": "alu"},
            {"kind": "issue", "cycle": 3, "seq": 1},
            # no complete/commit: in flight at end of trace
        ]
        assert o3_records(events) == []

    def test_validator_rejects_malformed(self):
        good = format_o3_record(self._record())
        with pytest.raises(ValueError):
            validate_o3_trace(good + "\nO3PipeView:bogus:1")
        with pytest.raises(ValueError):
            validate_o3_trace(good.replace("O3PipeView:issue", "Nope:issue"))

    def test_validator_rejects_nonmonotonic_ticks(self):
        bad = format_o3_record(self._record(complete=2))  # before issue=3
        with pytest.raises(ValueError):
            validate_o3_trace(bad)

    def test_real_trace_exports_and_validates(self, traced_run, tmp_path):
        tracer, stats = traced_run
        path = tmp_path / "o3.trace"
        written = export_o3_pipeview(tracer.events(), path)
        assert written > 0
        assert validate_o3_trace(path.read_text()) == written

    def test_real_records_are_stage_ordered(self, traced_run):
        tracer, _ = traced_run
        records = o3_records(tracer.events())
        assert records
        for record in records[:200]:
            assert (
                record["fetch"]
                <= record["dispatch"]
                <= record["issue"]
                <= record["complete"]
                <= record["retire"]
            )


class TestSquashStormIdentity:
    def test_commit_stream_and_o3_survive_squashes(self, tmp_path):
        """Branch-heavy run: mispredict squashes must not perturb the
        committed identity stream (seqs dense, strictly increasing)
        or the O3 export's tick monotonicity (INTERNALS §13)."""
        import random

        from repro.cache import MemoryHierarchy
        from repro.core import Mode, Token, TokenConfigRegister
        from repro.cpu import OutOfOrderCore
        from repro.cpu.isa import alu, branch
        from repro.obs.diff import (
            check_commit_invariants,
            committed_stream,
        )

        rng = random.Random(3)
        ops = []
        for i in range(400):
            ops.append(
                branch(rng.random() < 0.5, pc=0x400 + 4 * (i % 11))
            )
            ops.append(alu(pc=0x800 + 4 * (i % 5)))
        reg = TokenConfigRegister(
            Token.random(64, seed=1), mode=Mode.SECURE
        )
        core = OutOfOrderCore(MemoryHierarchy(token_config=reg))
        tracer = attach_tracer(core, RingTracer(capacity=1 << 18))
        stats = core.run(ops)
        assert stats.branch_mispredicts > 0

        events = tracer.events()
        assert tracer.dropped == 0
        assert any(e["kind"] == "squash" for e in events)
        commits = committed_stream(events)
        assert len(commits) == stats.committed
        check_commit_invariants(commits, dropped=tracer.dropped)
        seqs = [e["seq"] for e in commits]
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        cycles = [e["cycle"] for e in commits]
        assert cycles == sorted(cycles)

        out = tmp_path / "o3.trace"
        assert export_o3_pipeview(events, out) > 0
        assert validate_o3_trace(out.read_text()) > 0


class TestObservedRunAndReport:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        from repro.obs.runner import run_observed

        outdir = tmp_path_factory.mktemp("obsrun")
        run_observed(
            outdir,
            modes=["plain", "rest-debug"],
            scale=0.02,
            seed=7,
            interval=500,
            events=True,
            o3=True,
        )
        return outdir

    def test_artifacts_written(self, run_dir):
        payload = json.loads((run_dir / "run.json").read_text())
        assert set(payload["modes"]) == {"plain", "rest-debug"}
        for mode in ("plain", "rest-debug"):
            assert (run_dir / f"samples-{mode}.jsonl").exists()
            assert (run_dir / f"events-{mode}.jsonl").exists()
            assert (run_dir / f"stats-{mode}.txt").exists()
            buckets = payload["modes"][mode]["buckets"]
            assert sum(buckets.values()) == payload["modes"][mode]["cycles"]

    def test_o3_artifacts_validate(self, run_dir):
        for mode in ("plain", "rest-debug"):
            text = (run_dir / f"o3-{mode}.trace").read_text()
            assert validate_o3_trace(text) > 0

    def test_text_report_from_run_dir(self, run_dir):
        from repro.obs.report import render_text

        text = render_text(run_dir)
        assert "plain" in text and "rest-debug" in text
        assert "rob-store" in text  # waterfall rows present
        assert "IPC" in text  # sparkline section present

    def test_html_report_from_run_dir(self, run_dir):
        from repro.obs.report import render_html

        html = render_html(run_dir)
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "rest-debug" in html

    def test_report_degrades_on_missing_artifacts(
        self, run_dir, tmp_path, capsys
    ):
        """Deleting listed artifacts must downgrade the report to a
        note per missing file, not a traceback — exit stays 0."""
        import shutil

        from repro.__main__ import main

        clone = tmp_path / "clone"
        shutil.copytree(run_dir, clone)
        (clone / "samples-plain.jsonl").unlink()
        (clone / "events-plain.jsonl").unlink()
        payload = json.loads((clone / "run.json").read_text())
        # A listed-but-absent fast-tier artifact must degrade too.
        payload["modes"]["plain"]["fasttier_file"] = "fasttier-plain.json"
        (clone / "run.json").write_text(json.dumps(payload))

        assert main(["report", str(clone)]) == 0
        out = capsys.readouterr().out
        assert "samples-plain.jsonl missing" in out
        assert "events-plain.jsonl missing" in out
        assert "fasttier-plain.json missing" in out
        # The intact mode still renders fully.
        assert "rest-debug" in out

    def test_report_from_sweep_dir(self, tmp_path):
        from repro.obs.report import load_report_source, render_text

        payload = collect_mode_stalls(
            "xalancbmk", scale=0.02, seed=7, modes=("plain",)
        )
        (tmp_path / "stalls.json").write_text(json.dumps(payload))
        (tmp_path / "manifest.json").write_text(
            json.dumps({"scale": 0.02, "seed": 7, "experiments": {}})
        )
        source = load_report_source(tmp_path)
        assert source["kind"] == "sweep"
        text = render_text(tmp_path)
        assert "plain" in text

    def test_report_rejects_empty_dir(self, tmp_path):
        from repro.obs.report import load_report_source

        with pytest.raises(ValueError):
            load_report_source(tmp_path)


class TestRunAllIntegration:
    def test_stalls_unit_is_registered(self):
        from repro.experiments.run_all import (
            _SPECIAL_UNITS,
            EXPERIMENT_SCALES,
            experiment_units,
        )

        assert "stalls" in EXPERIMENT_SCALES
        units = {u.uid: u for u in experiment_units(scale=0.1, seed=1)}
        assert units["stalls"].module == "repro.obs.stalls"
        assert _SPECIAL_UNITS["stalls"][1] == "stalls.json"
        # Regular experiments still resolve to their own modules.
        assert units["table1"].module == "repro.experiments.table1"

    def test_patched_scales_exclude_stalls(self):
        # Test fixtures monkeypatch EXPERIMENT_SCALES with a subset;
        # passing explicit scales must not sneak the stalls unit in.
        from repro.experiments.run_all import experiment_units

        units = experiment_units(
            scale=0.1, seed=1, scales={"table1": None}
        )
        assert [u.uid for u in units] == ["table1"]


class TestCliSurface:
    def test_report_cli_renders_sweep_dir(self, tmp_path, capsys):
        from repro.__main__ import main

        payload = collect_mode_stalls(
            "xalancbmk", scale=0.02, seed=7, modes=("plain",)
        )
        (tmp_path / "stalls.json").write_text(json.dumps(payload))
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "plain" in out

    def test_metrics_cpi_breakdown(self, traced_run):
        from repro.harness.metrics import cpi_stall_breakdown

        _, stats = traced_run
        breakdown = cpi_stall_breakdown(stats)
        assert set(breakdown) == set(STALL_BUCKETS)
        total = sum(breakdown.values())
        assert total == pytest.approx(stats.cpi, rel=1e-3)
