"""Tests for the sparse backing store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import BackingStore


class TestBasicReadWrite:
    def test_zero_fill_on_demand(self):
        mem = BackingStore()
        assert mem.read(0x1234, 16) == b"\x00" * 16
        assert mem.resident_pages == 0  # reads never materialise pages

    def test_roundtrip(self):
        mem = BackingStore()
        mem.write(0x1000, b"hello world")
        assert mem.read(0x1000, 11) == b"hello world"

    def test_cross_page_write_and_read(self):
        mem = BackingStore(page_size=4096)
        data = bytes(range(256)) * 40  # 10240 bytes, spans 3+ pages
        mem.write(4096 - 100, data)
        assert mem.read(4096 - 100, len(data)) == data
        assert mem.resident_pages >= 3

    def test_sparse_far_addresses(self):
        mem = BackingStore()
        mem.write(0x0000_0000_0000_1000, b"low")
        mem.write(0x7FFF_FFFF_F000_0000, b"high")
        assert mem.read(0x1000, 3) == b"low"
        assert mem.read(0x7FFF_FFFF_F000_0000, 4) == b"high"
        assert mem.resident_pages == 2

    def test_fill(self):
        mem = BackingStore()
        mem.fill(0x2000, 100, 0xAB)
        assert mem.read(0x2000, 100) == b"\xab" * 100
        mem.fill(0x2000, 100)
        assert mem.read(0x2000, 100) == b"\x00" * 100

    def test_typed_accessors(self):
        mem = BackingStore()
        mem.write_u64(0x100, 0xDEADBEEF12345678)
        assert mem.read_u64(0x100) == 0xDEADBEEF12345678
        mem.write_u32(0x200, 0xCAFEBABE)
        assert mem.read_u32(0x200) == 0xCAFEBABE
        mem.write_u8(0x300, 0x7F)
        assert mem.read_u8(0x300) == 0x7F

    def test_u64_truncates_to_64_bits(self):
        mem = BackingStore()
        mem.write_u64(0, 2**64 + 5)
        assert mem.read_u64(0) == 5

    def test_rejects_out_of_space(self):
        mem = BackingStore()
        with pytest.raises(ValueError):
            mem.read(2**64 - 4, 8)
        with pytest.raises(ValueError):
            mem.write(-1, b"x")

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            BackingStore(page_size=1000)

    def test_release_drops_full_pages(self):
        mem = BackingStore(page_size=4096)
        mem.write(0, b"\xff" * 4096 * 3)
        assert mem.resident_pages == 3
        mem.release(0, 4096 * 3)
        assert mem.resident_pages == 0
        assert mem.read(0, 10) == b"\x00" * 10

    def test_release_zeroes_partial_pages(self):
        mem = BackingStore(page_size=4096)
        mem.write(0, b"\xff" * 8192)
        mem.release(100, 4096)  # partial head page, partial tail page
        assert mem.read(100, 4096) == b"\x00" * 4096
        assert mem.read(0, 100) == b"\xff" * 100

    def test_traffic_counters(self):
        mem = BackingStore()
        mem.write(0, b"abc")
        mem.read(0, 2)
        assert mem.bytes_written == 3
        assert mem.bytes_read == 2

    def test_pages_iterator(self):
        mem = BackingStore(page_size=4096)
        mem.write(4096 * 5, b"x")
        mem.write(4096 * 2, b"y")
        bases = [base for base, _ in mem.pages()]
        assert bases == [4096 * 2, 4096 * 5]


class TestBackingStoreProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**20),
                st.binary(min_size=1, max_size=300),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_flat_model(self, writes):
        """The sparse store behaves like a flat byte array."""
        mem = BackingStore(page_size=4096)
        reference = bytearray(2**20 + 512)
        for address, data in writes:
            mem.write(address, data)
            reference[address : address + len(data)] = data
        for address, data in writes:
            assert mem.read(address, len(data)) == bytes(
                reference[address : address + len(data)]
            )

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.binary(min_size=1, max_size=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_write_then_read_roundtrip(self, address, data):
        mem = BackingStore()
        mem.write(address, data)
        assert mem.read(address, len(data)) == data
