"""CLI robustness and parser corner cases."""

import io
from contextlib import redirect_stdout

import pytest

from repro.lang.parser import ParseError, parse
from repro.lang import Interpreter
from repro.defenses import PlainDefense
from repro.runtime import Machine


def run_cli(argv):
    from repro.__main__ import main

    captured = io.StringIO()
    with redirect_stdout(captured):
        code = main(argv)
    return code, captured.getvalue()


class TestCliRobustness:
    def test_trace_roundtrip_via_cli(self, tmp_path):
        path = str(tmp_path / "t.rtrace")
        code, output = run_cli(
            ["trace", "record", path, "--benchmark", "sjeng", "--scale", "0.02"]
        )
        assert code == 0 and "recorded" in output
        code, output = run_cli(["trace", "replay", path])
        assert code == 0 and "replayed" in output
        code, output = run_cli(["trace", "stats", path])
        assert code == 0 and "micro-ops" in output
        assert "alu" in output

    def test_trace_replay_debug_slower(self, tmp_path):
        path = str(tmp_path / "t.rtrace")
        run_cli(
            ["trace", "record", path, "--benchmark", "hmmer",
             "--defense", "rest", "--scale", "0.05"]
        )

        def cycles(extra):
            _, output = run_cli(["trace", "replay", path] + extra)
            return int(
                output.split("micro-ops in ")[1].split(" cycles")[0].replace(",", "")
            )

        assert cycles(["--debug"]) > cycles([])

    def test_minic_parse_error_reported(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text("int main( { return 0; }")
        with pytest.raises(ParseError):
            run_cli(["minic", "run", str(bad)])

    def test_experiments_security_via_cli(self):
        code, output = run_cli(["experiments", "security"])
        assert code == 0
        assert "detection coverage" in output


class TestParserCorners:
    def _run(self, source, *args):
        return Interpreter(parse(source), PlainDefense(Machine())).run(*args)

    def test_left_associativity(self):
        assert self._run("int main() { return 10 - 3 - 2; }") == 5
        assert self._run("int main() { return 16 / 4 / 2; }") == 2

    def test_comparison_chains_parse_left(self):
        # (1 < 2) < 3 -> 1 < 3 -> 1
        assert self._run("int main() { return 1 < 2 < 3; }") == 1

    def test_deeply_nested_blocks(self):
        source = "int main() {"
        source += "if (1) {" * 10
        source += "return 99;"
        source += "}" * 10
        source += "return 0; }"
        assert self._run(source) == 99

    def test_multiple_arrays_in_one_function(self):
        source = """
        int main() {
            int a[4];
            int b[4];
            a[0] = 1;
            b[0] = 2;
            return a[0] + b[0];
        }
        """
        program = parse(source)
        assert len(program.function("main").arrays) == 2
        assert self._run(source) == 3

    def test_array_decl_inside_block_hoisted(self):
        source = """
        int main() {
            if (1) {
                int late[4];
                late[0] = 5;
            }
            return late[0];
        }
        """
        # Hoisting gives the array function scope (C lifetime rules).
        assert self._run(source) == 5

    def test_keywords_not_usable_as_idents(self):
        with pytest.raises(ParseError):
            parse("int main() { int return = 1; return 0; }")

    def test_empty_function_body(self):
        assert self._run("int main() { }") == 0


class TestArgumentValidation:
    """--jobs and --cache validation across the CLI entry points."""

    def _expect_usage_exit(self, argv):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_experiments_rejects_zero_jobs(self):
        self._expect_usage_exit(["experiments", "--jobs", "0", "table1"])

    def test_experiments_rejects_negative_jobs(self):
        self._expect_usage_exit(["experiments", "--jobs", "-4", "table1"])

    def test_experiments_rejects_non_integer_jobs(self):
        self._expect_usage_exit(["experiments", "--jobs", "two", "table1"])

    def test_sweep_rejects_zero_jobs(self):
        self._expect_usage_exit(["sweep", "--jobs", "0"])

    def test_sweep_rejects_negative_jobs(self):
        self._expect_usage_exit(["sweep", "--jobs", "-1"])

    def test_experiments_rejects_file_as_cache(self, tmp_path):
        not_a_dir = tmp_path / "cache.json"
        not_a_dir.write_text("{}")
        self._expect_usage_exit(
            ["experiments", "--cache", str(not_a_dir), "table1"]
        )

    def test_sweep_rejects_file_as_cache(self, tmp_path):
        not_a_dir = tmp_path / "cache.json"
        not_a_dir.write_text("{}")
        self._expect_usage_exit(["sweep", "--cache", str(not_a_dir)])

    def test_run_all_rejects_zero_jobs(self):
        from repro.experiments.run_all import main as run_all_main

        with pytest.raises(SystemExit) as excinfo:
            run_all_main(["--jobs", "0"])
        assert excinfo.value.code == 2

    def test_run_all_rejects_file_as_cache_dir(self, tmp_path):
        from repro.experiments.run_all import main as run_all_main

        not_a_dir = tmp_path / "cache.json"
        not_a_dir.write_text("{}")
        with pytest.raises(SystemExit) as excinfo:
            run_all_main(["--cache-dir", str(not_a_dir)])
        assert excinfo.value.code == 2

    def test_result_cache_rejects_file_root(self, tmp_path):
        from repro.harness.parallel import ResultCache

        not_a_dir = tmp_path / "cache.json"
        not_a_dir.write_text("{}")
        with pytest.raises(ValueError, match="file, not a directory"):
            ResultCache(not_a_dir)

    def test_bench_rejects_zero_repeats(self):
        self._expect_usage_exit(["bench", "--repeats", "0"])

    def test_bench_rejects_unreadable_baseline(self, tmp_path):
        code, out = run_cli(
            [
                "bench",
                "--benchmark", "xalancbmk",
                "--scale", "0.02",
                "--repeats", "1",
                "--baseline", str(tmp_path / "missing.json"),
            ]
        )
        assert code == 2
        assert "cannot read baseline" in out


class TestAttackCli:
    """`repro attack` structured unknown-name handling."""

    def test_unknown_attack_is_usage_error_with_suggestions(self):
        code, out = run_cli(["attack", "heartbled"])
        assert code == 2
        assert "unknown attack 'heartbled'" in out
        assert "did you mean: heartbleed" in out

    def test_unknown_attack_lists_registry(self):
        code, out = run_cli(["attack", "zzz_not_an_attack"])
        assert code == 2
        assert "known:" in out
        assert "double_free" in out

    def test_run_attack_raises_structured_keyerror(self):
        from repro.defenses import make_defense
        from repro.workloads import UnknownAttackError
        from repro.workloads.attacks import run_attack

        with pytest.raises(UnknownAttackError) as excinfo:
            run_attack("heartbled", make_defense("none"))
        error = excinfo.value
        assert isinstance(error, KeyError)  # stays catchable as before
        assert "heartbleed" in error.suggestions
        assert "did you mean" in str(error)


class TestFoundryCli:
    """`repro foundry` exit discipline: 2 usage, 1 failure, 0 success."""

    def _expect_usage_exit(self, argv):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_rejects_zero_jobs(self):
        self._expect_usage_exit(["foundry", "--jobs", "0", "--cases", "9"])

    def test_rejects_zero_cases(self):
        self._expect_usage_exit(["foundry", "--cases", "0"])

    def test_rejects_unknown_defense(self):
        self._expect_usage_exit(
            ["foundry", "--cases", "9", "--defenses", "stackguard"]
        )

    def test_rejects_file_as_cache(self, tmp_path):
        not_a_dir = tmp_path / "cache.json"
        not_a_dir.write_text("{}")
        self._expect_usage_exit(
            ["foundry", "--cases", "9", "--cache", str(not_a_dir)]
        )

    def test_unknown_family_is_usage_error(self):
        code, out = run_cli(
            ["foundry", "--cases", "9", "--families", "heap_spray"]
        )
        assert code == 2
        assert "unknown family" in out
        assert "heap_spray" in out

    def test_small_run_exits_zero_and_writes_matrix(self, tmp_path):
        out_path = tmp_path / "m" / "foundry_matrix.json"
        code, out = run_cli(
            ["foundry", "--seed", "3", "--cases", "9", "--defenses",
             "none", "rest", "--strict", "--out", str(out_path)]
        )
        assert code == 0
        assert "foundry coverage matrix" in out
        assert "oracle mispredictions: none" in out
        assert out_path.exists()

    def test_golden_mismatch_exits_one(self, tmp_path):
        golden = tmp_path / "golden.json"
        golden.write_text('{"schema": "rest-repro/foundry-matrix/v1"}\n')
        code, out = run_cli(
            ["foundry", "--seed", "3", "--cases", "9", "--defenses",
             "none", "--golden", str(golden)]
        )
        assert code == 1
        assert "golden" in out


class TestSweepCli:
    """`repro sweep` exit discipline and live progress streaming."""

    ARGS = ["sweep", "--seeds", "1", "--benchmarks", "bzip2",
            "--scale", "0.02"]

    def test_live_streams_sampler_lines(self):
        code, out = run_cli(self.ARGS + ["--live"])
        assert code == 0
        # At least one in-flight sampler snapshot was rendered, tagged
        # with the cell id, before the summary table.
        assert "live bzip2/" in out
        live_at = out.index("live bzip2/")
        assert "ipc" in out[live_at:]
        assert out.index("config") > live_at

    def test_failed_cell_exits_nonzero_with_structured_error(
        self, tmp_path, monkeypatch
    ):
        from repro.faults.plan import ALWAYS, FaultPlan, FaultSpec

        uid = "bzip2/Secure Heap/1"
        plan = FaultPlan(seed=1)
        plan.faults[uid] = FaultSpec(kind="crash", fail_attempts=ALWAYS)
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", str(plan.write(tmp_path / "plan.json"))
        )
        code, out = run_cli(self.ARGS)
        assert code == 1
        # The message names the failed cell and the worker error type so
        # scripts can tell a failed simulation from a bad invocation.
        assert f"sweep failed: {uid}: WorkerCrash" in out
        assert "attempt" in out

    def test_duplicate_seeds_are_usage_error(self):
        code, out = run_cli(
            ["sweep", "--seeds", "1", "1", "--benchmarks", "bzip2",
             "--scale", "0.02"]
        )
        assert code == 2
        assert "sweep failed:" in out
        assert "unique" in out
