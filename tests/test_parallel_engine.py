"""Determinism, caching, failure isolation, and resume for the
parallel sweep engine (repro.harness.parallel + run_all + seed_sweep)."""

import json

import pytest

from repro.experiments import run_all as driver
from repro.harness.configs import DefenseSpec
from repro.harness.parallel import (
    TIMING_FIELDS,
    ResultCache,
    WorkUnit,
    code_version_salt,
    execute_units,
    failed_units,
    strip_volatile,
)
from repro.harness.sweeps import seed_sweep, sweep_units
from repro.workloads.spec import profile_by_name

#: Cheap experiment subset: two real modules plus the injectable one.
FAST_SCALES = {"table1": None, "table2": None, "_selftest": None}


@pytest.fixture(autouse=True)
def _fixed_salt(monkeypatch):
    """Pin the cache salt: tests must not depend on source hashing, and
    the env var propagates to forked/spawned workers."""
    monkeypatch.setenv("REPRO_CACHE_SALT", "test-salt")


@pytest.fixture
def fast_experiments(monkeypatch):
    monkeypatch.setattr(driver, "EXPERIMENT_SCALES", dict(FAST_SCALES))


def read_outputs(outdir):
    return {
        path.name: path.read_bytes()
        for path in sorted(outdir.glob("*.txt"))
    }


def read_manifest(outdir):
    return json.loads((outdir / "manifest.json").read_text())


class TestUnitPrimitives:
    def test_cache_key_depends_on_payload_and_salt(self):
        unit = WorkUnit(uid="u", module="m", func="f", key_payload={"a": 1})
        other = WorkUnit(uid="u", module="m", func="f", key_payload={"a": 2})
        assert unit.cache_key("s") != other.cache_key("s")
        assert unit.cache_key("s") != unit.cache_key("s2")
        assert unit.cache_key("s") == unit.cache_key("s")

    def test_code_version_salt_env_override(self):
        assert code_version_salt() == "test-salt"

    def test_strip_volatile_recurses(self):
        data = {
            "wall_seconds": 1.0,
            "nested": [{"cpu_seconds": 2, "keep": 3}],
            "started": "now",
            "cached": True,
            "keep": {"seconds": 9, "x": 1},
        }
        assert strip_volatile(data) == {
            "nested": [{"keep": 3}],
            "keep": {"x": 1},
        }
        assert "seconds" in TIMING_FIELDS

    def test_duplicate_uids_rejected(self):
        unit = WorkUnit(uid="u", module="m", func="f")
        with pytest.raises(ValueError):
            execute_units([unit, unit])

    def test_result_cache_roundtrip_and_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = WorkUnit(uid="u", module="m", func="f", key_payload={"a": 1})
        key = unit.cache_key("s")
        assert cache.get(key) is None
        cache.put(key, unit, {"v": 1})
        assert cache.get(key)["value"] == {"v": 1}
        cache._path(key).write_text("{not json")
        assert cache.get(key) is None
        assert cache.hits == 1 and cache.misses == 2 and cache.stores == 1


class TestDeterminism:
    def test_parallel_matches_serial_byte_for_byte(
        self, tmp_path, fast_experiments
    ):
        serial = driver.run_all(
            tmp_path / "serial", scale=0.05, jobs=1, use_cache=False,
            quiet=True,
        )
        parallel = driver.run_all(
            tmp_path / "parallel", scale=0.05, jobs=4, use_cache=False,
            quiet=True,
        )
        assert read_outputs(serial) == read_outputs(parallel)
        assert strip_volatile(read_manifest(serial)) == strip_volatile(
            read_manifest(parallel)
        )
        from repro.harness.regression import manifests_equal

        assert manifests_equal(
            serial / "manifest.json", parallel / "manifest.json"
        )

    def test_cache_hits_identical_to_cold_run(
        self, tmp_path, fast_experiments
    ):
        out = tmp_path / "run"
        driver.run_all(out, scale=0.05, jobs=2, quiet=True)
        cold_outputs = read_outputs(out)
        cold_manifest = read_manifest(out)
        assert not any(
            record["cached"]
            for record in cold_manifest["experiments"].values()
        )

        driver.run_all(out, scale=0.05, jobs=2, quiet=True)
        warm_manifest = read_manifest(out)
        assert all(
            record["cached"]
            for record in warm_manifest["experiments"].values()
        )
        assert read_outputs(out) == cold_outputs
        assert strip_volatile(warm_manifest) == strip_volatile(cold_manifest)

    def test_seed_sweep_jobs_invariant(self):
        profiles = [profile_by_name("sjeng")]
        specs = [DefenseSpec.rest("Secure Full")]
        serial = seed_sweep(profiles, specs, seeds=(1, 2), scale=0.05, jobs=1)
        fanned = seed_sweep(profiles, specs, seeds=(1, 2), scale=0.05, jobs=2)
        assert serial["Secure Full"].samples == fanned["Secure Full"].samples

    def test_seed_sweep_cache_hits_identical(self, tmp_path):
        profiles = [profile_by_name("sjeng")]
        specs = [DefenseSpec.rest("Secure Full")]
        cache = ResultCache(tmp_path / "cache")
        cold = seed_sweep(
            profiles, specs, seeds=(1, 2), scale=0.05, cache=cache
        )
        stores = cache.stores
        warm = seed_sweep(
            profiles, specs, seeds=(1, 2), scale=0.05, cache=cache
        )
        assert cache.stores == stores  # nothing recomputed
        assert warm["Secure Full"].samples == cold["Secure Full"].samples


class TestFailureIsolation:
    def test_failed_unit_recorded_not_fatal(
        self, tmp_path, fast_experiments, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SELFTEST_BOOM", "1")
        out = driver.run_all(
            tmp_path / "boom", scale=0.05, jobs=2, quiet=True
        )
        manifest = read_manifest(out)
        record = manifest["experiments"]["_selftest"]
        assert record["status"] == "error"
        assert record["error"]["type"] == "InjectedFailure"
        assert "REPRO_SELFTEST_BOOM" in record["error"]["message"]
        assert "traceback" in record["error"]
        # every other cell completed and was written
        for name in ("table1", "table2"):
            assert manifest["experiments"][name]["status"] == "ok"
            assert (out / f"{name}.txt").exists()
        assert not (out / "_selftest.txt").exists()

    def test_cli_exit_codes(self, tmp_path, fast_experiments, monkeypatch):
        outdir = str(tmp_path / "cli")
        monkeypatch.setenv("REPRO_SELFTEST_BOOM", "1")
        assert driver.main(["--outdir", outdir, "--scale", "0.05"]) == 1
        monkeypatch.delenv("REPRO_SELFTEST_BOOM")
        assert driver.main(["--outdir", outdir, "--scale", "0.05"]) == 0

    def test_resume_recomputes_only_failed_cells(
        self, tmp_path, fast_experiments, monkeypatch
    ):
        out = tmp_path / "resume"
        monkeypatch.setenv("REPRO_SELFTEST_BOOM", "1")
        driver.run_all(out, scale=0.05, jobs=2, quiet=True)
        monkeypatch.delenv("REPRO_SELFTEST_BOOM")

        driver.run_all(out, scale=0.05, jobs=2, quiet=True)
        manifest = read_manifest(out)
        experiments = manifest["experiments"]
        assert experiments["_selftest"] == {
            **experiments["_selftest"],
            "status": "ok",
            "cached": False,  # the failed cell really re-ran
        }
        for name in ("table1", "table2"):
            assert experiments[name]["cached"] is True
        assert (out / "_selftest.txt").read_text().startswith("selftest ok")

    def test_seed_sweep_failure_surfaces_structured_error(self, monkeypatch):
        profiles = [profile_by_name("sjeng")]
        specs = [DefenseSpec.rest("Secure Full")]
        units = sweep_units(profiles, specs, seeds=(1,), scale=0.05)
        broken = [
            WorkUnit(
                uid=unit.uid,
                module="repro.experiments._selftest",
                func="regenerate",
                kwargs={},
                key_payload=unit.key_payload,
            )
            if unit.uid.startswith("sjeng/Secure Full")
            else unit
            for unit in units
        ]
        monkeypatch.setenv("REPRO_SELFTEST_BOOM", "1")
        results = execute_units(broken, jobs=2)
        failures = failed_units(results)
        assert list(failures) == ["sjeng/Secure Full/1"]
        assert failures["sjeng/Secure Full/1"]["type"] == "InjectedFailure"
        # the Plain cell still completed
        assert results["sjeng/Plain/1"].ok

        monkeypatch.setattr(
            "repro.harness.sweeps.sweep_units", lambda *a, **k: broken
        )
        with pytest.raises(RuntimeError, match="InjectedFailure"):
            seed_sweep(profiles, specs, seeds=(1,), scale=0.05, jobs=2)


class TestEngineMerge:
    def test_merge_is_by_uid_not_completion_order(self):
        units = [
            WorkUnit(
                uid=f"u{i}",
                module="repro.experiments._selftest",
                func="regenerate",
                kwargs={"scale": 1.0, "seed": i},
                key_payload={"i": i},
            )
            for i in range(6)
        ]
        results = execute_units(units, jobs=3)
        for i in range(6):
            assert results[f"u{i}"].value == f"selftest ok: scale=1.0 seed={i}"

    def test_cache_shared_across_job_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        units = [
            WorkUnit(
                uid=f"u{i}",
                module="repro.experiments._selftest",
                func="regenerate",
                kwargs={"scale": 1.0, "seed": i},
                key_payload={"i": i},
            )
            for i in range(4)
        ]
        execute_units(units, jobs=4, cache=cache)
        rerun = execute_units(units, jobs=1, cache=cache)
        assert all(result.cached for result in rerun.values())
