"""Property-based tests of the pipeline's conservation invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import MemoryHierarchy
from repro.cpu import CoreConfig, OutOfOrderCore
from repro.cpu.isa import MicroOp, OpType


def build_trace(ops):
    trace = []
    for kind, payload in ops:
        if kind == "alu":
            trace.append(MicroOp(OpType.ALU, deps=(1,) if payload % 2 else ()))
        elif kind == "load":
            trace.append(
                MicroOp(OpType.LOAD, address=0x10000 + (payload & ~7), size=8)
            )
        elif kind == "store":
            trace.append(
                MicroOp(OpType.STORE, address=0x10000 + (payload & ~7), size=8)
            )
        elif kind == "branch":
            trace.append(
                MicroOp(OpType.BRANCH, pc=0x400 + 4 * (payload % 16),
                        taken=bool(payload % 3))
            )
    return trace


op_stream = st.lists(
    st.tuples(
        st.sampled_from(["alu", "load", "store", "branch"]),
        st.integers(min_value=0, max_value=4095),
    ),
    min_size=1,
    max_size=120,
)


class TestConservation:
    @given(op_stream)
    @settings(max_examples=40, deadline=None)
    def test_every_op_commits_exactly_once(self, ops):
        trace = build_trace(ops)
        stats = OutOfOrderCore(MemoryHierarchy()).run(trace)
        assert stats.committed == len(trace)
        assert stats.fetched == len(trace)
        assert sum(stats.op_counts.values()) == len(trace)

    @given(op_stream)
    @settings(max_examples=25, deadline=None)
    def test_deterministic_replay(self, ops):
        cycles = []
        for _ in range(2):
            trace = build_trace(ops)
            cycles.append(OutOfOrderCore(MemoryHierarchy()).run(trace).cycles)
        assert cycles[0] == cycles[1]

    @given(op_stream)
    @settings(max_examples=25, deadline=None)
    def test_cycles_bounded_below_by_width(self, ops):
        trace = build_trace(ops)
        core = OutOfOrderCore(MemoryHierarchy())
        stats = core.run(trace)
        assert stats.cycles >= len(trace) / core.config.commit_width

    @given(op_stream)
    @settings(max_examples=15, deadline=None)
    def test_narrow_machine_never_faster(self, ops):
        from dataclasses import replace

        from repro.mem.dram import DramConfig, DramModel

        # Uniform DRAM latency (row miss == row hit): the wide and
        # narrow machines interleave I- and D-side DRAM accesses in a
        # different order, so with real open-row state the wide machine
        # can lose row locality and occasionally finish *later* — a
        # memory-system artefact, not a width property.  Flattening the
        # row timing isolates the width/window difference this test is
        # actually about.
        def flat_dram():
            return DramModel(DramConfig(precharge_ns=0.0, ras_ns=0.0))

        wide = OutOfOrderCore(
            MemoryHierarchy(dram=flat_dram())
        ).run(build_trace(ops)).cycles
        # Same mispredict penalty: isolate the width/window difference.
        narrow_config = replace(CoreConfig.in_order(), mispredict_penalty=12)
        narrow = OutOfOrderCore(
            MemoryHierarchy(dram=flat_dram()), config=narrow_config
        ).run(build_trace(ops)).cycles
        assert narrow >= wide

    @given(op_stream)
    @settings(max_examples=15, deadline=None)
    def test_queues_empty_at_end(self, ops):
        core = OutOfOrderCore(MemoryHierarchy())
        core.run(build_trace(ops))
        assert core.rob.empty
        assert len(core.iq) == 0
        assert core.lsq.lq_occupancy == 0
        assert core.lsq.sq_occupancy == 0
