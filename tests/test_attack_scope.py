"""Scope-boundary attacks: what no tripwire scheme catches, and why."""

import pytest

from repro.defenses import AsanDefense, PlainDefense, RestDefense
from repro.runtime import Machine
from repro.workloads import AttackOutcome, run_attack


def all_defenses():
    return [
        PlainDefense(Machine()),
        AsanDefense(Machine()),
        RestDefense(Machine(), protect_stack=True),
    ]


class TestScopeBoundaries:
    def test_use_after_return_missed_by_all(self):
        """REST's epilogue disarm (clean-stack invariant) makes UAR
        invisible; deployed ASan without fake-stack misses it too."""
        for defense in all_defenses():
            result = run_attack("use_after_return", defense)
            assert result.outcome is AttackOutcome.MISSED, result

    def test_intra_object_overflow_missed_by_all(self):
        """No metadata can live inside an object: by-construction miss
        for tripwires (and whole-object bounds checkers)."""
        for defense in all_defenses():
            result = run_attack("intra_object_overflow", defense)
            assert result.outcome is AttackOutcome.MISSED, result

    def test_off_by_one_on_aligned_size_caught_by_both(self):
        """With no pad (64-byte allocation), the boundary byte lands on
        the redzone: both tripwire schemes catch it."""
        assert run_attack("off_by_one_write", AsanDefense(Machine())).detected
        assert run_attack(
            "off_by_one_write", RestDefense(Machine())
        ).detected
        assert not run_attack(
            "off_by_one_write", PlainDefense(Machine())
        ).detected

    def test_off_by_one_vs_pad_overflow_contrast(self):
        """The pair (off_by_one_write, pad_overflow) bounds REST's
        granularity false-negative window exactly: aligned boundary
        caught, pad-absorbed small overflow missed."""
        rest = RestDefense(Machine())
        assert run_attack("off_by_one_write", rest).detected
        rest = RestDefense(Machine())
        assert (
            run_attack("pad_overflow", rest).outcome is AttackOutcome.MISSED
        )
