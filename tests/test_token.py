"""Unit and property tests for the REST token primitive (paper §V-B)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    PrivilegeError,
    PrivilegeLevel,
    Mode,
    Token,
    TokenConfigRegister,
    brute_force_years,
    false_positive_probability,
    max_aligned_chunks,
)
from repro.core.token import TOKEN_CONFIG_STORE_WIDTH, TOKEN_WIDTHS


class TestToken:
    def test_default_width_is_cache_line(self):
        token = Token.random(64, seed=1)
        assert token.width == 64
        assert token.width_bits == 512

    @pytest.mark.parametrize("width", TOKEN_WIDTHS)
    def test_supported_widths(self, width):
        token = Token.random(width, seed=2)
        assert token.width == width
        assert len(token.value) == width

    def test_rejects_unsupported_width(self):
        with pytest.raises(ValueError):
            Token(b"\x01" * 48)
        with pytest.raises(ValueError):
            Token.random(8, seed=3)

    def test_seeded_generation_is_deterministic(self):
        assert Token.random(64, seed=7) == Token.random(64, seed=7)
        assert Token.random(64, seed=7) != Token.random(64, seed=8)

    def test_unseeded_generation_uses_entropy(self):
        assert Token.random(64) != Token.random(64)

    def test_matches_exact_pattern_only(self):
        token = Token.random(64, seed=4)
        assert token.matches(token.value)
        corrupted = bytearray(token.value)
        corrupted[0] ^= 1
        assert not token.matches(bytes(corrupted))
        assert not token.matches(token.value[:32])

    @pytest.mark.parametrize("width", TOKEN_WIDTHS)
    def test_alignment(self, width):
        token = Token.random(width, seed=5)
        assert token.aligned(0)
        assert token.aligned(width * 3)
        assert not token.aligned(width * 3 + 1)

    def test_chunks_reassemble_to_value(self):
        token = Token.random(64, seed=6)
        beats = token.width // 4
        rebuilt = b"".join(token.chunk(i) for i in range(beats))
        assert rebuilt == token.value

    def test_hash_and_equality_over_bytes(self):
        a = Token.random(32, seed=9)
        b = Token(a.value)
        assert a == b and hash(a) == hash(b)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_aligned_iff_multiple_of_width(self, address):
        token = Token.random(64, seed=10)
        assert token.aligned(address) == (address % 64 == 0)


class TestSecurityArithmetic:
    def test_false_positive_bound_512(self):
        # Paper: chance of a false positive is less than 2^-512.
        p = false_positive_probability(512)
        assert p == 2.0 ** -512
        assert p < 1e-150  # vanishingly small, as the paper argues

    def test_false_positive_bound_smaller_widths(self):
        assert false_positive_probability(128) == 2.0 ** -128
        assert false_positive_probability(128) > 0

    def test_false_positive_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            false_positive_probability(0)

    def test_max_aligned_chunks_footnote2(self):
        # Footnote 2 quotes 2^48 chunks for a "64b address space"; the
        # exact arithmetic for a full 64-bit space is 2^(64-6) = 2^58.
        # The paper's figure corresponds to a 54-bit usable space; either
        # way the count is astronomically below 2^512.
        assert max_aligned_chunks(64, 64) == 2**58
        assert max_aligned_chunks(54, 64) == 2**48

    def test_max_aligned_chunks_other_widths(self):
        assert max_aligned_chunks(64, 32) == 2**59
        assert max_aligned_chunks(64, 16) == 2**60

    def test_brute_force_years_footnote2(self):
        # Footnote 2 cites ~10^145 "years" at 3 GHz; that figure matches
        # the *seconds* for a full 2^512 sweep.  The honest expected-case
        # years figure is ~7e136 — equally far beyond feasible.
        years = brute_force_years(512, 3e9)
        assert 1e135 < years < 1e140
        seconds_full_sweep = years * 2 * 365.25 * 24 * 3600
        assert 1e144 < seconds_full_sweep < 1e146

    def test_brute_force_scales_with_width(self):
        assert brute_force_years(128) < brute_force_years(256)


class TestTokenConfigRegister:
    def test_user_level_cannot_set_token(self):
        reg = TokenConfigRegister()
        with pytest.raises(PrivilegeError):
            reg.set_token(Token.random(64, seed=1), PrivilegeLevel.USER)

    def test_user_level_cannot_set_mode(self):
        reg = TokenConfigRegister()
        with pytest.raises(PrivilegeError):
            reg.set_mode(Mode.DEBUG, PrivilegeLevel.USER)

    def test_supervisor_can_rotate(self):
        reg = TokenConfigRegister(Token.random(64, seed=1))
        old = reg.token_for_hardware()
        new = reg.rotate(PrivilegeLevel.SUPERVISOR, seed=99)
        assert new != old
        assert reg.token_for_hardware() == new

    def test_mode_bit(self):
        reg = TokenConfigRegister()
        assert reg.mode is Mode.SECURE
        reg.set_mode(Mode.DEBUG, PrivilegeLevel.MACHINE)
        assert reg.mode is Mode.DEBUG
        assert reg.mode.precise_exceptions
        assert reg.mode.delayed_store_commit

    def test_mmio_store_sequence_installs_atomically(self):
        reg = TokenConfigRegister(Token.random(64, seed=1))
        old = reg.token_for_hardware()
        new_value = Token.random(64, seed=42).value
        for offset in range(0, 64, TOKEN_CONFIG_STORE_WIDTH):
            # Token only swaps once every byte has been written.
            assert reg.token_for_hardware() == old
            reg.mmio_store(
                offset,
                new_value[offset : offset + TOKEN_CONFIG_STORE_WIDTH],
                PrivilegeLevel.SUPERVISOR,
            )
        assert reg.token_for_hardware().value == new_value

    def test_mmio_store_requires_privilege(self):
        reg = TokenConfigRegister()
        with pytest.raises(PrivilegeError):
            reg.mmio_store(0, b"\x00" * 8, PrivilegeLevel.USER)

    def test_mmio_store_rejects_unaligned(self):
        reg = TokenConfigRegister()
        with pytest.raises(ValueError):
            reg.mmio_store(3, b"\x00" * 8, PrivilegeLevel.SUPERVISOR)

    def test_mmio_store_rejects_out_of_range(self):
        reg = TokenConfigRegister()
        with pytest.raises(ValueError):
            reg.mmio_store(64, b"\x00" * 8, PrivilegeLevel.SUPERVISOR)


class TestPrivilegeLevels:
    def test_next_higher_chain(self):
        assert PrivilegeLevel.USER.next_higher() is PrivilegeLevel.SUPERVISOR
        assert (
            PrivilegeLevel.SUPERVISOR.next_higher() is PrivilegeLevel.MACHINE
        )

    def test_fatal_at_top(self):
        with pytest.raises(ValueError):
            PrivilegeLevel.MACHINE.next_higher()
