"""Fast-tier analytical replay: determinism, accuracy, CLI gating.

Three contracts, matching the tier's documented guarantees
(INTERNALS §12):

* **Memo determinism** — a warm replay (memo hit) must be
  byte-identical to the cold characterization that populated the memo.
  The whole engine is integer fixed-point arithmetic, so equality is
  exact, not approximate.
* **Declared accuracy** — on the benchmark set the bench harness
  gates in CI, end-to-end fast-tier cycles stay within the declared
  tolerance of the cycle-accurate tier, per (workload × defense) cell.
  The divergence is a pure function of the trace, so these assertions
  cannot flake.
* **Surface gating** — ``--tier fast`` is rejected with a usage error
  (exit 2) everywhere the fast tier cannot honour the request: attack
  workloads (their result is a detection outcome, not a cycle count),
  attack-driven experiments, and observability exports that need the
  real pipeline.
"""

import io
from contextlib import redirect_stdout
from dataclasses import asdict

import pytest

from repro.fasttier import (
    DECLARED_TOLERANCE,
    BlockMemo,
    FastTierEngine,
)
from repro.harness.bench import bench_specs
from repro.harness.configs import SimulationConfig
from repro.harness.experiment import run_benchmark
from repro.runtime.machine import ExecutionMode, Machine
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.spec import profile_by_name


def _make_trace(benchmark: str, spec, scale: float, seed: int):
    from repro.harness.experiment import build_defense

    config = SimulationConfig(scale=scale, seed=seed)
    machine = Machine(
        mode=ExecutionMode.TRACE,
        perfect_hw=spec.perfect_hw,
        software_rest=spec.defense == "softrest",
    )
    machine.token_width = spec.token_width
    defense = build_defense(machine, spec)
    SyntheticWorkload(
        profile_by_name(benchmark),
        defense,
        seed=config.seed,
        scale=config.scale,
        alloc_intensity=config.alloc_intensity,
    ).run()
    return machine.take_trace(), config


def run_cli(argv):
    from repro.__main__ import main

    captured = io.StringIO()
    with redirect_stdout(captured):
        code = main(argv)
    return code, captured.getvalue()


class TestMemoDeterminism:
    def test_warm_replay_byte_identical_to_cold(self):
        spec = bench_specs()["rest-secure"]
        trace, config = _make_trace("xalancbmk", spec, 0.25, 1234)
        engine = FastTierEngine(BlockMemo())

        cold = engine.run(trace, spec, config)
        warm = engine.run(trace, spec, config)

        assert not cold.memo_hit and warm.memo_hit
        assert asdict(warm.stats) == asdict(cold.stats)
        assert asdict(warm.hierarchy_stats) == asdict(cold.hierarchy_stats)
        assert warm.divergence == cold.divergence
        assert warm.l1d_miss_rate == cold.l1d_miss_rate
        assert warm.l2_miss_rate == cold.l2_miss_rate
        # Only the memo-hit flag may differ.
        meta_cold = dict(cold.meta, memo_hit=None)
        meta_warm = dict(warm.meta, memo_hit=None)
        assert meta_warm == meta_cold

    def test_rerun_is_deterministic_across_engines(self):
        spec = bench_specs()["plain"]
        trace, config = _make_trace("gcc", spec, 0.25, 1234)
        one = FastTierEngine(BlockMemo()).run(trace, spec, config)
        two = FastTierEngine(BlockMemo()).run(trace, spec, config)
        assert asdict(one.stats) == asdict(two.stats)

    def test_memo_distinguishes_defense_modes(self):
        specs = bench_specs()
        memo = BlockMemo()
        engine = FastTierEngine(memo)
        for mode in ("rest-secure", "rest-debug"):
            trace, config = _make_trace("xalancbmk", specs[mode], 0.25, 7)
            result = engine.run(trace, specs[mode], config)
            assert not result.memo_hit  # distinct key per defense mode
        assert len(memo.entries) == 2


class TestDeclaredAccuracy:
    #: The cells the CI bench job gates; scale matches ``bench --quick``.
    SCALE = 0.25
    SEED = 1234

    @pytest.mark.parametrize("mode", sorted(bench_specs()))
    def test_divergence_within_declared_tolerance(self, mode):
        spec = bench_specs()[mode]
        profile = profile_by_name("xalancbmk")
        config = SimulationConfig(scale=self.SCALE, seed=self.SEED)
        accurate = run_benchmark(profile, spec, config)
        fast = run_benchmark(profile, spec, config, tier="fast")
        divergence = (
            fast.cycles - accurate.cycles
        ) / accurate.cycles
        assert abs(divergence) <= DECLARED_TOLERANCE, (
            f"{mode}: fast {fast.cycles} vs accurate {accurate.cycles} "
            f"({100.0 * divergence:+.2f}%)"
        )
        # Same trace in, same uop count out: the fast tier replays the
        # identical instruction stream, only the pricing is analytical.
        assert fast.instructions == accurate.instructions

    def test_fast_result_carries_divergence_payload(self):
        spec = bench_specs()["asan"]
        profile = profile_by_name("xalancbmk")
        config = SimulationConfig(scale=self.SCALE, seed=self.SEED)
        fast = run_benchmark(profile, spec, config, tier="fast")
        assert fast.tier == "fast"
        assert fast.fast_meta["tier"] == "fast"
        assert (
            fast.fast_divergence["declared_tolerance_pct"]
            == DECLARED_TOLERANCE * 100.0
        )
        assert fast.fast_divergence["per_block_class"], (
            "per-block-class divergence rows must be populated"
        )


class TestSurfaceGating:
    def test_foundry_rejects_tier_flag(self):
        # ``repro foundry`` executes attack corpora; it has no --tier
        # flag at all, so argparse exits with the usage code.
        with pytest.raises(SystemExit) as err:
            run_cli(["foundry", "--tier", "fast"])
        assert err.value.code == 2

    def test_attack_rejects_tier_flag(self):
        with pytest.raises(SystemExit) as err:
            run_cli(["attack", "all", "--tier", "fast"])
        assert err.value.code == 2

    @pytest.mark.parametrize(
        "experiment", ["table3", "security", "attackmatrix"]
    )
    def test_attack_experiments_reject_fast(self, experiment):
        code, output = run_cli(["experiments", experiment, "--tier", "fast"])
        assert code == 2
        assert "not supported" in output

    def test_sweep_live_rejects_fast(self):
        code, output = run_cli(
            ["sweep", "--tier", "fast", "--live", "--seeds", "1",
             "--scale", "0.05", "--benchmarks", "sjeng"]
        )
        assert code == 2
        assert "sampler" in output or "live" in output

    def test_run_per_uop_exports_reject_fast(self, tmp_path):
        code, output = run_cli(
            ["run", "--outdir", str(tmp_path), "--tier", "fast", "--o3"]
        )
        assert code == 2
        assert "fast" in output

    def test_run_benchmark_rejects_sampler_under_fast(self):
        profile = profile_by_name("sjeng")
        spec = bench_specs()["plain"]
        with pytest.raises(ValueError, match="sampler"):
            run_benchmark(
                profile,
                spec,
                SimulationConfig(scale=0.05),
                on_sample=lambda sample: None,
                tier="fast",
            )

    def test_unknown_tier_rejected(self):
        profile = profile_by_name("sjeng")
        spec = bench_specs()["plain"]
        with pytest.raises(ValueError, match="unknown tier"):
            run_benchmark(
                profile, spec, SimulationConfig(scale=0.05), tier="warp"
            )
