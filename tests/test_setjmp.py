"""Tests for setjmp/longjmp vs REST stack protection (paper §V-C)."""

import pytest

from repro.core import RestException
from repro.defenses import RestDefense
from repro.runtime import Machine
from repro.runtime.setjmp import FrameRegistry, JmpBuf, longjmp, setjmp


def make_defense():
    return RestDefense(Machine(), protect_stack=True)


def enter_frames(defense, registry=None, count=3):
    frames = []
    for _ in range(count):
        frame = defense.function_enter([64])
        if registry is not None:
            registry.register(frame)
        frames.append(frame)
    return frames


class TestBaselineIncompatibility:
    def test_longjmp_orphans_tokens(self):
        """The paper's unsupported case: skipped frames leave their
        redzones armed, so a fresh frame at the same addresses faults
        on its own (legal) prologue/epilogue activity."""
        defense = make_defense()
        env = setjmp(defense)
        frames = enter_frames(defense, count=3)
        orphaned = frames[-1].buffers[0].left_redzone_address
        skipped = longjmp(defense, env)
        assert skipped == 3
        assert defense.machine.hierarchy.is_armed(orphaned)
        # Future stack use reuses those addresses: any frame whose
        # locals land on a stale token faults spuriously.  (A frame
        # with the *identical* layout happens to line up with the old
        # redzones; any differently-shaped frame does not.)
        with pytest.raises(RestException):
            frame = defense.function_enter([512])
            for offset in range(0, 512, 8):
                defense.store(frame.buffers[0].address + offset, b"x" * 8)

    def test_longjmp_to_returned_frame_rejected(self):
        defense = make_defense()
        frame = defense.function_enter([])
        env = setjmp(defense)
        defense.function_exit(frame)
        with pytest.raises(RuntimeError):
            longjmp(defense, env)


class TestFrameRegistryMitigation:
    def test_longjmp_with_registry_is_clean(self):
        """The future-work mechanism: a frame registry lets longjmp
        disarm exactly the skipped frames; execution continues."""
        defense = make_defense()
        registry = FrameRegistry()
        env = setjmp(defense)
        frames = enter_frames(defense, registry, count=3)
        orphan_candidate = frames[-1].buffers[0].left_redzone_address
        skipped = longjmp(defense, env, frame_registry=registry)
        assert skipped == 3
        assert not defense.machine.hierarchy.is_armed(orphan_candidate)
        # Fresh frames over the same region behave normally.
        frame = defense.function_enter([64])
        for offset in range(0, 64, 8):
            defense.store(frame.buffers[0].address + offset, b"y" * 8)
        defense.function_exit(frame)

    def test_registry_cost_is_two_disarms_per_buffer(self):
        defense = make_defense()
        registry = FrameRegistry()
        env = setjmp(defense)
        enter_frames(defense, registry, count=4)
        longjmp(defense, env, frame_registry=registry)
        assert registry.disarms_performed == 4 * 2  # 1 buffer/frame

    def test_partial_unwind(self):
        defense = make_defense()
        registry = FrameRegistry()
        outer = defense.function_enter([64])
        registry.register(outer)
        env = setjmp(defense)  # depth 1
        enter_frames(defense, registry, count=2)
        longjmp(defense, env, frame_registry=registry)
        assert defense.stack.depth == 1
        # The outer frame's protection is untouched.
        assert defense.machine.hierarchy.is_armed(
            outer.buffers[0].left_redzone_address
        )
        defense.function_exit(outer)

    def test_heap_only_rest_unaffected_by_longjmp(self):
        """Heap-only REST (no stack tokens) never had the problem."""
        defense = RestDefense(Machine(), protect_stack=False)
        env = setjmp(defense)
        for _ in range(3):
            defense.function_enter([64])
        longjmp(defense, env)
        frame = defense.function_enter([64])
        defense.store(frame.buffers[0].address, b"fine....")
        defense.function_exit(frame)
