"""Tests for the three allocators (libc / ASan / REST)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RestException
from repro.runtime import (
    AllocationError,
    AsanAllocator,
    ExecutionMode,
    LibcAllocator,
    Machine,
    RestAllocator,
)
from repro.runtime.shadow import AsanViolation


def functional_machine():
    return Machine()


class TestLibcAllocator:
    def test_malloc_returns_aligned_heap_pointer(self):
        machine = functional_machine()
        alloc = LibcAllocator(machine)
        ptr = alloc.malloc(100)
        assert machine.layout.in_heap(ptr)
        assert ptr % 16 == 0

    def test_distinct_allocations_disjoint(self):
        alloc = LibcAllocator(functional_machine())
        a = alloc.malloc(64)
        b = alloc.malloc(64)
        assert abs(a - b) >= 64

    def test_immediate_reuse(self):
        """Stock allocators reuse freed memory right away."""
        alloc = LibcAllocator(functional_machine())
        a = alloc.malloc(64)
        alloc.free(a)
        b = alloc.malloc(64)
        assert b == a
        assert alloc.stats.reuses == 1

    def test_free_unknown_pointer_raises(self):
        alloc = LibcAllocator(functional_machine())
        with pytest.raises(AllocationError):
            alloc.free(0xDEAD)

    def test_zero_size_rejected(self):
        alloc = LibcAllocator(functional_machine())
        with pytest.raises(AllocationError):
            alloc.malloc(0)

    def test_arena_exhaustion(self):
        machine = functional_machine()
        alloc = LibcAllocator(machine, arena_size=4096)
        with pytest.raises(AllocationError):
            for _ in range(100):
                alloc.malloc(256)

    def test_stats(self):
        alloc = LibcAllocator(functional_machine())
        alloc.malloc(100)
        ptr = alloc.malloc(50)
        alloc.free(ptr)
        assert alloc.stats.allocations == 2
        assert alloc.stats.frees == 1
        assert alloc.stats.live_allocations == 1
        assert alloc.stats.bytes_requested == 150


class TestAsanAllocator:
    def test_redzones_poisoned_payload_clean(self):
        machine = functional_machine()
        alloc = AsanAllocator(machine)
        ptr = alloc.malloc(100)
        shadow = alloc.shadow
        assert not shadow.is_poisoned(ptr, 100)
        assert shadow.is_poisoned(ptr - 1)
        redzone = alloc.redzone_size(100)
        payload_span = alloc._round(100)
        assert shadow.is_poisoned(ptr + payload_span)
        assert shadow.is_poisoned(ptr - redzone)

    def test_redzone_scales_with_size(self):
        alloc = AsanAllocator(functional_machine())
        assert alloc.redzone_size(16) == 16
        assert alloc.redzone_size(10_000) > alloc.redzone_size(16)
        assert alloc.redzone_size(10**7) == alloc.max_redzone

    def test_free_poisons_and_quarantines(self):
        alloc = AsanAllocator(functional_machine())
        ptr = alloc.malloc(64)
        alloc.free(ptr)
        assert alloc.shadow.is_poisoned(ptr, 64)
        assert alloc.in_quarantine(ptr)

    def test_no_immediate_reuse(self):
        """ASan's defining allocator property (paper §II source 1)."""
        alloc = AsanAllocator(functional_machine())
        a = alloc.malloc(64)
        alloc.free(a)
        b = alloc.malloc(64)
        assert b != a

    def test_quarantine_drains_when_over_budget(self):
        alloc = AsanAllocator(functional_machine(), quarantine_bytes=1024)
        ptrs = [alloc.malloc(128) for _ in range(20)]
        for ptr in ptrs:
            alloc.free(ptr)
        assert alloc.stats.quarantine_drains > 0
        assert alloc.stats.quarantine_bytes <= 1024

    def test_reuse_after_quarantine_unpoisons(self):
        alloc = AsanAllocator(functional_machine(), quarantine_bytes=256)
        a = alloc.malloc(128)
        alloc.free(a)
        b = alloc.malloc(200)  # push quarantine over budget
        alloc.free(b)
        c = alloc.malloc(128)  # may reuse a's chunk
        assert not alloc.shadow.is_poisoned(c, 128)

    def test_double_free_detected(self):
        alloc = AsanAllocator(functional_machine())
        ptr = alloc.malloc(64)
        alloc.free(ptr)
        with pytest.raises(AsanViolation):
            alloc.free(ptr)
        assert alloc.double_frees_detected == 1


class TestRestAllocator:
    def test_payload_token_aligned(self):
        machine = functional_machine()
        alloc = RestAllocator(machine)
        ptr = alloc.malloc(100)
        assert ptr % machine.token_width == 0

    def test_redzones_armed(self):
        machine = functional_machine()
        alloc = RestAllocator(machine)
        ptr = alloc.malloc(100)
        width = machine.token_width
        span = alloc._round(100, width)
        assert machine.hierarchy.is_armed(ptr - width)
        assert machine.hierarchy.is_armed(ptr + span)
        # Payload itself is not armed.
        assert not machine.hierarchy.is_armed(ptr)

    def test_overflow_into_redzone_faults(self):
        machine = functional_machine()
        alloc = RestAllocator(machine)
        ptr = alloc.malloc(64)
        with pytest.raises(RestException):
            machine.load(ptr + 64, 8)

    def test_underflow_into_redzone_faults(self):
        machine = functional_machine()
        alloc = RestAllocator(machine)
        ptr = alloc.malloc(64)
        with pytest.raises(RestException):
            machine.load(ptr - 8, 8)

    def test_free_blacklists_payload(self):
        """UAF protection: freed memory is filled with tokens."""
        machine = functional_machine()
        alloc = RestAllocator(machine)
        ptr = alloc.malloc(128)
        machine.store(ptr, b"secret!!")
        alloc.free(ptr)
        with pytest.raises(RestException):
            machine.load(ptr, 8)

    def test_no_immediate_reuse(self):
        alloc = RestAllocator(functional_machine())
        a = alloc.malloc(64)
        alloc.free(a)
        b = alloc.malloc(64)
        assert b != a

    def test_quarantine_drain_zeroes_memory(self):
        """The relaxed invariant: free pool is zeroed, not armed."""
        machine = functional_machine()
        alloc = RestAllocator(machine, quarantine_bytes=512)
        a = alloc.malloc(64)
        machine.store(a, b"leakable")
        alloc.free(a)
        # Force quarantine over budget so a's chunk drains.
        for _ in range(4):
            alloc.free(alloc.malloc(128))
        assert not alloc.in_quarantine(a)
        # Reuse must see zeroed memory: no uninitialized-data leaks.
        c = alloc.malloc(64)
        if c == a:
            assert machine.load(c, 8) == b"\x00" * 8

    def test_reuse_after_drain_rearms_redzones(self):
        machine = functional_machine()
        alloc = RestAllocator(machine, quarantine_bytes=0)
        a = alloc.malloc(64)
        alloc.free(a)  # immediately drains with zero budget
        b = alloc.malloc(64)
        assert b == a  # reused
        assert machine.hierarchy.is_armed(b - machine.token_width)
        with pytest.raises(RestException):
            machine.load(b + alloc._round(64, machine.token_width), 8)

    def test_double_free_detected(self):
        alloc = RestAllocator(functional_machine())
        ptr = alloc.malloc(64)
        alloc.free(ptr)
        with pytest.raises(RestException):
            alloc.free(ptr)
        assert alloc.double_frees_detected == 1

    def test_memory_overhead_tracked(self):
        alloc = RestAllocator(functional_machine())
        alloc.malloc(64)
        assert alloc.stats.memory_overhead_ratio >= 3.0  # 64 + 2x64 rz


class TestAllocatorProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=30)
    )
    @settings(max_examples=25, deadline=None)
    def test_live_allocations_never_overlap_rest(self, sizes):
        machine = functional_machine()
        alloc = RestAllocator(machine)
        regions = []
        for size in sizes:
            ptr = alloc.malloc(size)
            for start, end in regions:
                assert ptr + size <= start or ptr >= end
            regions.append((ptr, ptr + size))

    @given(
        st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=30)
    )
    @settings(max_examples=25, deadline=None)
    def test_live_allocations_never_overlap_asan(self, sizes):
        machine = functional_machine()
        alloc = AsanAllocator(machine)
        regions = []
        for size in sizes:
            ptr = alloc.malloc(size)
            for start, end in regions:
                assert ptr + size <= start or ptr >= end
            regions.append((ptr, ptr + size))

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_malloc_free_interleaving_consistent(self, data):
        machine = Machine(mode=ExecutionMode.TRACE)
        alloc = RestAllocator(machine)
        live = []
        for _ in range(30):
            if live and data.draw(st.booleans()):
                ptr = live.pop(data.draw(st.integers(0, len(live) - 1)))
                alloc.free(ptr)
            else:
                live.append(alloc.malloc(data.draw(st.integers(1, 300))))
        assert alloc.stats.live_allocations == len(live)
