"""Stateful property tests: allocators under adversarial op sequences.

Hypothesis drives arbitrary interleavings of malloc/free against each
allocator and checks the integrity invariants that memory safety
depends on: live allocations never overlap, payloads stay aligned,
freed REST chunks are blacklisted until reallocation, and the
allocator's accounting never drifts.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core import RestException
from repro.runtime import (
    AsanAllocator,
    ExecutionMode,
    FastRestAllocator,
    LibcAllocator,
    Machine,
    RestAllocator,
)


class AllocatorMachine(RuleBasedStateMachine):
    """Common rules; subclasses pick the allocator under test."""

    allocator_cls = LibcAllocator
    functional = False  # REST machines run functionally to check tokens

    @initialize()
    def setup(self):
        mode = (
            ExecutionMode.FUNCTIONAL
            if self.functional
            else ExecutionMode.TRACE
        )
        self.machine = Machine(mode=mode)
        self.allocator = self.allocator_cls(
            self.machine, quarantine_bytes=4096
        ) if self.allocator_cls is not LibcAllocator else self.allocator_cls(
            self.machine
        )
        self.live = {}  # ptr -> size

    @rule(size=st.integers(min_value=1, max_value=2048))
    def malloc(self, size):
        ptr = self.allocator.malloc(size)
        assert ptr not in self.live
        self.live[ptr] = size

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        ptr = data.draw(st.sampled_from(sorted(self.live)))
        self.allocator.free(ptr)
        del self.live[ptr]

    @invariant()
    def live_regions_disjoint(self):
        if not hasattr(self, "live"):
            return
        regions = sorted(
            (ptr, ptr + size) for ptr, size in self.live.items()
        )
        for (_, end_a), (start_b, _) in zip(regions, regions[1:]):
            assert end_a <= start_b, "live allocations overlap"

    @invariant()
    def accounting_consistent(self):
        if not hasattr(self, "live"):
            return
        stats = self.allocator.stats
        assert stats.live_allocations == len(self.live)
        assert stats.bytes_reserved >= stats.bytes_requested


class LibcMachine(AllocatorMachine):
    allocator_cls = LibcAllocator


class AsanMachine(AllocatorMachine):
    allocator_cls = AsanAllocator

    @invariant()
    def payloads_unpoisoned_redzones_poisoned(self):
        if not hasattr(self, "live"):
            return
        for ptr, size in self.live.items():
            assert not self.allocator.shadow.is_poisoned(ptr, size)
            assert self.allocator.shadow.is_poisoned(ptr - 1)


class RestMachine(AllocatorMachine):
    allocator_cls = RestAllocator
    functional = True

    @invariant()
    def payload_accessible_redzones_armed(self):
        if not hasattr(self, "live"):
            return
        for ptr, size in self.live.items():
            self.machine.load(ptr, min(8, size))  # must not fault
            width = self.machine.token_width
            assert self.machine.hierarchy.is_armed(ptr - width)


class FastRestMachine(AllocatorMachine):
    allocator_cls = FastRestAllocator
    functional = True

    @invariant()
    def payload_accessible_guard_armed(self):
        if not hasattr(self, "live"):
            return
        for ptr, size in self.live.items():
            self.machine.load(ptr, min(8, size))
            assert self.machine.hierarchy.is_armed(
                ptr - self.machine.token_width
            )


_settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)

TestLibcStateful = LibcMachine.TestCase
TestLibcStateful.settings = _settings
TestAsanStateful = AsanMachine.TestCase
TestAsanStateful.settings = _settings
TestRestStateful = RestMachine.TestCase
TestRestStateful.settings = _settings
TestFastRestStateful = FastRestMachine.TestCase
TestFastRestStateful.settings = _settings
