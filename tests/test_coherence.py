"""Multicore tests: token semantics survive coherence unmodified.

The paper claims REST needs no coherence/consistency changes and that
inter-core and inter-cache interactions cannot bypass token semantics
(§I, §V-B).  These tests exercise cross-core arm/load/store/disarm
sequences through the MSI snoop layer.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.coherence import MulticoreHierarchy
from repro.core import RestException


@pytest.fixture
def smp():
    return MulticoreHierarchy(cores=2)


class TestCrossCoreTokens:
    def test_arm_visible_to_other_core(self, smp):
        """Core 1 cannot read a location core 0 armed."""
        smp.arm(0, 0x1000)
        with pytest.raises(RestException):
            smp.read(1, 0x1000, 8)

    def test_arm_blocks_remote_store(self, smp):
        smp.arm(0, 0x1000)
        with pytest.raises(RestException):
            smp.write(1, 0x1008, b"\xff" * 8)

    def test_remote_disarm_then_access(self, smp):
        """Disarm from another core restores access system-wide."""
        smp.arm(0, 0x1000)
        smp.disarm(1, 0x1000)
        data, _ = smp.read(0, 0x1000, 8)
        assert data == b"\x00" * 8
        data, _ = smp.read(1, 0x1000, 8)
        assert data == b"\x00" * 8

    def test_shared_read_keeps_token_both_sides(self, smp):
        """A read-shared *adjacent* location leaves the token armed."""
        smp.write(0, 0x1040, b"shared!!")
        smp.arm(0, 0x1000)
        data, _ = smp.read(1, 0x1040, 8)  # different line, both share
        assert data == b"shared!!"
        with pytest.raises(RestException):
            smp.read(1, 0x1000, 8)
        with pytest.raises(RestException):
            smp.read(0, 0x1000, 8)

    def test_token_transfer_counted(self, smp):
        smp.arm(0, 0x1000)
        with pytest.raises(RestException):
            smp.read(1, 0x1000, 8)
        assert smp.stats.token_line_transfers >= 1

    def test_plain_data_coherence(self, smp):
        """Ordinary MSI behaviour is intact alongside tokens."""
        smp.write(0, 0x2000, b"from-c0!")
        data, _ = smp.read(1, 0x2000, 8)
        assert data == b"from-c0!"
        smp.write(1, 0x2000, b"from-c1!")
        data, _ = smp.read(0, 0x2000, 8)
        assert data == b"from-c1!"
        assert smp.stats.invalidations >= 1

    def test_double_disarm_across_cores_raises(self, smp):
        smp.arm(0, 0x1000)
        smp.disarm(1, 0x1000)
        with pytest.raises(RestException):
            smp.disarm(0, 0x1000)

    def test_is_armed_systemwide(self, smp):
        smp.arm(0, 0x3000)
        assert smp.is_armed(0x3000)
        smp.disarm(0, 0x3000)
        assert not smp.is_armed(0x3000)

    def test_four_cores(self):
        smp = MulticoreHierarchy(cores=4)
        smp.arm(2, 0x1000)
        for core in range(4):
            with pytest.raises(RestException):
                smp.read(core, 0x1000, 8)
        smp.disarm(3, 0x1000)
        for core in range(4):
            smp.read(core, 0x1000, 8)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MulticoreHierarchy(cores=0)


class TestCoherencePropertyVsReference:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_token_state_matches_reference_model(self, data):
        """Random cross-core op sequences track a trivial reference:
        a set of armed addresses, regardless of which core acts."""
        smp = MulticoreHierarchy(cores=2)
        slots = [0x1000 + 64 * i for i in range(4)]
        armed = set()
        for _ in range(40):
            core = data.draw(st.integers(0, 1))
            slot = data.draw(st.sampled_from(slots))
            action = data.draw(st.sampled_from(["arm", "disarm", "load", "store"]))
            if action == "arm":
                smp.arm(core, slot)
                armed.add(slot)
            elif action == "disarm":
                if slot in armed:
                    smp.disarm(core, slot)
                    armed.discard(slot)
                else:
                    with pytest.raises(RestException):
                        smp.disarm(core, slot)
            elif action == "load":
                if slot in armed:
                    with pytest.raises(RestException):
                        smp.read(core, slot, 8)
                else:
                    smp.read(core, slot, 8)
            else:
                if slot in armed:
                    with pytest.raises(RestException):
                        smp.write(core, slot, b"x" * 8)
                else:
                    smp.write(core, slot, b"x" * 8)
            assert smp.is_armed(slot) == (slot in armed)
