"""Property-based tests: the hierarchy against a trivial reference.

The REST hardware is a lot of machinery (token bits, deferred
materialisation, eviction refills, detector rescans), but its
*architectural* token state must always equal a trivial reference
model: a set of armed addresses.  Hypothesis drives random operation
sequences — including cache-thrashing reads that force evictions and
refetches — and checks every observable against the reference.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import MemoryHierarchy
from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import HierarchyConfig
from repro.core import Mode, RestException, Token, TokenConfigRegister
from repro.core.exceptions import InvalidRestInstructionError


def tiny_hierarchy(width=64, seed=1):
    """Small caches so random sequences actually evict lines."""
    register = TokenConfigRegister(Token.random(width, seed=seed))
    config = HierarchyConfig(
        l1d=CacheConfig(name="L1-D", size=512, associativity=2, line_size=64),
        l2=CacheConfig(
            name="L2", size=1024, associativity=2, line_size=64, hit_latency=20
        ),
    )
    return MemoryHierarchy(config=config, token_config=register)


SLOTS = [64 * i for i in range(24)]  # spans several cache sets

operation = st.tuples(
    st.sampled_from(["arm", "disarm", "load", "store", "flush"]),
    st.sampled_from(SLOTS),
)


class TestTokenStateInvariant:
    @given(st.lists(operation, min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_armed_set(self, operations):
        h = tiny_hierarchy()
        armed = set()
        for action, slot in operations:
            if action == "arm":
                h.arm(slot)
                armed.add(slot)
            elif action == "disarm":
                if slot in armed:
                    h.disarm(slot)
                    armed.discard(slot)
                else:
                    with pytest.raises(RestException):
                        h.disarm(slot)
            elif action == "load":
                if slot in armed:
                    with pytest.raises(RestException):
                        h.read(slot, 8)
                else:
                    h.read(slot, 8)
            elif action == "store":
                if slot in armed:
                    with pytest.raises(RestException):
                        h.write(slot, b"z" * 8)
                else:
                    h.write(slot, b"z" * 8)
            else:  # flush: evict everything; tokens must survive
                h.writeback_all()
            assert h.is_armed(slot) == (slot in armed)

    @given(st.lists(operation, min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_narrow_tokens_same_invariant(self, operations):
        h = tiny_hierarchy(width=16)
        armed = set()
        for action, slot in operations:
            if action == "arm":
                h.arm(slot)
                armed.add(slot)
            elif action == "disarm":
                if slot in armed:
                    h.disarm(slot)
                    armed.discard(slot)
                else:
                    with pytest.raises(RestException):
                        h.disarm(slot)
            elif action == "load":
                if slot in armed:
                    with pytest.raises(RestException):
                        h.read(slot, 8)
                else:
                    h.read(slot, 8)
            elif action == "store":
                if slot in armed:
                    with pytest.raises(RestException):
                        h.write(slot, b"z" * 8)
                else:
                    h.write(slot, b"z" * 8)
            else:
                h.writeback_all()
            assert h.is_armed(slot) == (slot in armed)

    @given(
        st.lists(st.sampled_from(SLOTS), min_size=1, max_size=30, unique=True)
    )
    @settings(max_examples=30, deadline=None)
    def test_data_integrity_around_tokens(self, armed_slots):
        """Arming and disarming never corrupts neighbouring data."""
        h = tiny_hierarchy()
        data_slots = [s for s in SLOTS if s not in armed_slots]
        for slot in data_slots:
            h.write(slot, slot.to_bytes(8, "little"))
        for slot in armed_slots:
            h.arm(slot)
        h.writeback_all()  # force token materialisation
        for slot in data_slots:
            value, _ = h.read(slot, 8)
            assert value == slot.to_bytes(8, "little")
        for slot in armed_slots:
            h.disarm(slot)
            value, _ = h.read(slot, 8)
            assert value == b"\x00" * 8  # disarm zeroes

    @given(st.integers(min_value=1, max_value=63))
    def test_unaligned_arm_never_changes_state(self, misalignment):
        h = tiny_hierarchy()
        with pytest.raises(InvalidRestInstructionError):
            h.arm(64 + misalignment)
        assert not h.is_armed(64)
