"""Every shipped benchmark profile must validate against its model."""

import pytest

from repro.workloads import ALL_PROFILES
from repro.workloads.validation import (
    measure_trace,
    validate_profile,
)


@pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
def test_profile_model_is_faithful(profile):
    issues = validate_profile(profile, scale=0.25)
    assert not issues, "; ".join(str(issue) for issue in issues)


def test_measure_trace_rejects_empty():
    from repro.workloads.generator import WorkloadStats

    with pytest.raises(ValueError):
        measure_trace([], WorkloadStats())


def test_code_footprint_reflected_in_trace():
    """Big-text benchmarks touch far more code lines than kernels."""
    from repro.defenses import PlainDefense
    from repro.runtime.machine import ExecutionMode, Machine
    from repro.workloads import SyntheticWorkload, profile_by_name
    from repro.workloads.validation import measure_trace

    def code_lines(name):
        machine = Machine(mode=ExecutionMode.TRACE)
        defense = PlainDefense(machine)
        workload = SyntheticWorkload(
            profile_by_name(name), defense, scale=0.25
        )
        stats = workload.run()
        return measure_trace(machine.take_trace(), stats).distinct_code_lines

    assert code_lines("gcc") > 4 * code_lines("lbm")
