"""Tests for Mini-C cycle measurement and the minic CLI."""

import io
from contextlib import redirect_stdout

import pytest

from repro.core.modes import Mode
from repro.harness.configs import DefenseSpec
from repro.lang import heartbleed_program, sum_array_program
from repro.lang.measure import compare_program, measure_program


class TestMeasureProgram:
    def test_benign_program_overheads_ordered(self):
        program = sum_array_program(16)
        results = compare_program(
            program,
            [
                DefenseSpec.asan(),
                DefenseSpec.rest("Secure"),
                DefenseSpec.rest("Debug", mode=Mode.DEBUG),
            ],
        )
        plain = results["Plain"]
        assert plain.faulted is None
        secure = results["Secure"].overhead_vs(plain)
        debug = results["Debug"].overhead_vs(plain)
        asan = results["ASan"].overhead_vs(plain)
        assert secure < debug
        assert secure < asan
        assert results["Secure"].arms > 0  # stack redzones armed

    def test_buggy_program_faults_under_rest_only(self):
        program = heartbleed_program()
        results = compare_program(
            program, [DefenseSpec.rest("Secure"), DefenseSpec.asan()]
        )
        assert results["Plain"].faulted is None
        assert results["ASan"].faulted is None  # no tokens in replay
        assert results["Secure"].faulted is not None
        assert "token" in results["Secure"].faulted

    def test_perfect_hw_measurable(self):
        program = sum_array_program(8)
        measurement = measure_program(
            program, DefenseSpec.rest("PHW", perfect_hw=True)
        )
        assert measurement.arms == 0  # arms lowered to stores


class TestMinicCli:
    def _run(self, argv):
        from repro.__main__ import main

        captured = io.StringIO()
        with redirect_stdout(captured):
            code = main(argv)
        return code, captured.getvalue()

    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text(
            "int main() {\n"
            "    int buf[4];\n"
            "    for (i = 0; i < 4; i++) { buf[i] = i; }\n"
            "    return buf[3];\n"
            "}\n"
        )
        return str(path)

    @pytest.fixture
    def buggy_file(self, tmp_path):
        path = tmp_path / "bug.c"
        path.write_text(
            "int main() {\n"
            "    int p = malloc(64);\n"
            "    return p[9];\n"  # one cell into the right redzone
            "}\n"
        )
        return str(path)

    def test_run_benign(self, source_file):
        code, output = self._run(
            ["minic", "run", source_file, "--defense", "rest"]
        )
        assert code == 0
        assert "main returned 3" in output

    def test_run_buggy_detected(self, buggy_file):
        code, output = self._run(
            ["minic", "run", buggy_file, "--defense", "rest-heap"]
        )
        assert code == 1
        assert "memory-safety violation" in output

    def test_run_buggy_plain_silent(self, buggy_file):
        code, output = self._run(
            ["minic", "run", buggy_file, "--defense", "plain"]
        )
        assert code == 0

    def test_measure(self, source_file):
        code, output = self._run(["minic", "measure", source_file])
        assert code == 0
        assert "Plain" in output and "ASan" in output
        assert "REST Secure Full" in output
