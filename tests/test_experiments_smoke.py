"""Smoke tests for the experiment modules (subset scale, full paths)."""

import pytest

from repro.workloads.spec import profile_by_name

TWO_PROFILES = (profile_by_name("sjeng"), profile_by_name("xalancbmk"))


class TestFig7:
    def test_run_and_render(self, monkeypatch):
        from repro.experiments import fig7

        monkeypatch.setattr(fig7, "ALL_PROFILES", TWO_PROFILES)
        results = fig7.run(scale=0.02)
        text = fig7.render(results)
        assert "WtdAriMean" in text and "GeoMean" in text
        assert "Secure Full" in text
        assert "xalancbmk" in text and "sjeng" in text

    def test_all_eight_configs_present(self, monkeypatch):
        from repro.experiments import fig7

        monkeypatch.setattr(fig7, "ALL_PROFILES", TWO_PROFILES[:1])
        results = fig7.run(scale=0.02)
        assert set(results["sjeng"]) == {
            "Plain",
            "ASan",
            "Debug Full",
            "Secure Full",
            "PerfectHW Full",
            "Debug Heap",
            "Secure Heap",
            "PerfectHW Heap",
        }


class TestFig8:
    def test_run_and_render(self, monkeypatch):
        from repro.experiments import fig8

        monkeypatch.setattr(fig8, "ALL_PROFILES", TWO_PROFILES[:1])
        text = fig8.render(fig8.run(scale=0.02))
        for label in ("16 Full", "32 Heap", "64 Full"):
            assert label in text
        assert "spread" in text


class TestFig3:
    def test_breakdown_components_sum_to_total(self, monkeypatch):
        from repro.experiments import fig3

        monkeypatch.setattr(fig3, "ALL_PROFILES", TWO_PROFILES[:1])
        results = fig3.run(scale=0.02)
        parts = fig3.breakdown(results)
        per_bench = parts["sjeng"]
        total_from_parts = sum(per_bench.values())
        plain = results["sjeng"]["Plain"].runtime
        full = results["sjeng"]["cum:API Intercept"].runtime
        assert total_from_parts == pytest.approx(
            (full / plain - 1) * 100, abs=0.01
        )

    def test_render(self, monkeypatch):
        from repro.experiments import fig3

        monkeypatch.setattr(fig3, "ALL_PROFILES", TWO_PROFILES[:1])
        text = fig3.render(fig3.run(scale=0.02))
        assert "Memory Access Validation" in text
        assert "Allocator" in text


class TestMemOverhead:
    def test_regenerate_small(self, monkeypatch):
        from repro.experiments import memoverhead

        monkeypatch.setattr(memoverhead, "ALL_PROFILES", TWO_PROFILES)
        text = memoverhead.regenerate(scale=0.05)
        assert "TOTAL" in text
        assert "shadow bytes" in text


class TestIntext:
    def test_regenerate_small(self, monkeypatch):
        from repro.experiments import intext as module

        monkeypatch.setattr(module, "ALL_PROFILES", TWO_PROFILES[:1])
        text = module.regenerate(scale=0.02)
        assert "ROB blocked-by-store cycles" in text
        assert "Secure Full - Secure Heap" in text
