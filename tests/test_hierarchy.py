"""Integration tests for the memory hierarchy with REST semantics.

These tests exercise the Table I action matrix end-to-end: arm, disarm,
load and store on cache hits and misses, plus the eviction path that
materialises token values into memory.
"""

import pytest

from repro.cache import HierarchyConfig, MemoryHierarchy
from repro.cache.cache import CacheConfig
from repro.core import (
    InvalidRestInstructionError,
    Mode,
    PrivilegeLevel,
    RestException,
    Token,
    TokenConfigRegister,
)
from repro.core.exceptions import RestFaultKind


def make_hierarchy(width=64, mode=Mode.SECURE, seed=1):
    reg = TokenConfigRegister(Token.random(width, seed=seed), mode=mode)
    return MemoryHierarchy(token_config=reg)


def tiny_hierarchy(width=64, mode=Mode.SECURE, seed=1):
    """A hierarchy with a tiny L1 so evictions are easy to force."""
    reg = TokenConfigRegister(Token.random(width, seed=seed), mode=mode)
    config = HierarchyConfig(
        l1d=CacheConfig(name="L1-D", size=512, associativity=2, line_size=64),
        l2=CacheConfig(
            name="L2", size=2048, associativity=2, line_size=64, hit_latency=20
        ),
    )
    return MemoryHierarchy(config=config, token_config=reg)


class TestPlainAccesses:
    def test_read_write_roundtrip(self):
        h = make_hierarchy()
        h.write(0x1000, b"hello")
        data, result = h.read(0x1000, 5)
        assert data == b"hello"
        assert result.l1_hit  # write-allocate brought the line in

    def test_first_access_misses(self):
        h = make_hierarchy()
        _, result = h.read(0x1000, 4)
        assert not result.l1_hit
        assert result.went_to_memory
        assert result.latency > h.config.l1d.hit_latency

    def test_second_access_hits(self):
        h = make_hierarchy()
        h.read(0x1000, 4)
        _, result = h.read(0x1004, 4)
        assert result.l1_hit
        assert result.latency == h.config.l1d.hit_latency

    def test_line_crossing_access(self):
        h = make_hierarchy()
        h.write(0x103C, b"A" * 8)  # crosses the 0x1040 line boundary
        data, _ = h.read(0x103C, 8)
        assert data == b"A" * 8

    def test_l2_hit_after_l1_eviction(self):
        h = tiny_hierarchy()
        h.read(0x0, 4)
        # Evict line 0 from tiny L1 by filling its set.
        set_stride = h.l1d.config.num_sets * 64
        h.read(set_stride, 4)
        h.read(2 * set_stride, 4)
        _, result = h.read(0x0, 4)
        assert not result.l1_hit and result.l2_hit


class TestArmDisarm:
    def test_arm_then_load_raises(self):
        h = make_hierarchy()
        h.arm(0x1000)
        with pytest.raises(RestException) as info:
            h.read(0x1000, 8)
        assert info.value.kind is RestFaultKind.LOAD_TOUCHED_TOKEN
        assert info.value.address == 0x1000

    def test_arm_then_store_raises(self):
        h = make_hierarchy()
        h.arm(0x1000)
        with pytest.raises(RestException) as info:
            h.write(0x1008, b"\xff" * 4)
        assert info.value.kind is RestFaultKind.STORE_TOUCHED_TOKEN

    def test_arm_unaligned_raises_precise(self):
        h = make_hierarchy()
        with pytest.raises(InvalidRestInstructionError):
            h.arm(0x1001)

    def test_disarm_unaligned_raises_precise(self):
        h = make_hierarchy()
        with pytest.raises(InvalidRestInstructionError):
            h.disarm(0x1004)

    def test_disarm_unarmed_raises(self):
        h = make_hierarchy()
        with pytest.raises(RestException) as info:
            h.disarm(0x1000)
        assert info.value.kind is RestFaultKind.DISARM_UNARMED
        assert info.value.precise  # disarm faults are always precise

    def test_disarm_restores_access_and_zeroes(self):
        h = make_hierarchy()
        h.write(0x1000, b"\xaa" * 64)
        h.arm(0x1000)
        h.disarm(0x1000)
        data, _ = h.read(0x1000, 64)
        assert data == b"\x00" * 64  # disarm zeroes the slot

    def test_arm_hit_single_cycle(self):
        h = make_hierarchy()
        h.read(0x1000, 4)  # bring line in
        result = h.arm(0x1000)
        assert result.latency == 1  # paper: arm hits complete in 1 cycle

    def test_disarm_costs_extra_cycle(self):
        h = make_hierarchy()
        h.arm(0x1000)
        result = h.disarm(0x1000)
        assert result.latency == 1 + h.config.disarm_extra_cycles

    def test_adjacent_data_unaffected(self):
        h = make_hierarchy()
        h.write(0x10C0, b"B" * 64)
        h.arm(0x1100)
        data, _ = h.read(0x10C0, 64)
        assert data == b"B" * 64

    def test_narrow_token_slots_independent(self):
        h = make_hierarchy(width=16)
        h.write(0x1000, b"C" * 64)
        h.arm(0x1010)  # slot 1 of the line
        data, _ = h.read(0x1000, 16)  # slot 0 still fine
        assert data == b"C" * 16
        data, _ = h.read(0x1020, 16)  # slot 2 fine
        assert data == b"C" * 16
        with pytest.raises(RestException):
            h.read(0x1010, 1)

    def test_access_spanning_into_token_slot_raises(self):
        h = make_hierarchy(width=16)
        h.arm(0x1010)
        with pytest.raises(RestException):
            h.read(0x100C, 8)  # touches slots 0 and 1


class TestEvictionSemantics:
    def test_token_value_written_on_eviction(self):
        h = tiny_hierarchy()
        token = h.detector.token
        h.arm(0x0)
        # Before eviction the backing store does NOT hold the token:
        # arm only set the bit (the single-cycle-arm optimisation).
        assert h.backing.read(0x0, 64) != token.value
        set_stride = h.l1d.config.num_sets * 64
        h.read(set_stride, 4)
        h.read(2 * set_stride, 4)  # evicts the armed line
        assert h.backing.read(0x0, 64) == token.value

    def test_refetched_token_line_detected(self):
        h = tiny_hierarchy()
        h.arm(0x0)
        set_stride = h.l1d.config.num_sets * 64
        h.read(set_stride, 4)
        h.read(2 * set_stride, 4)
        # Line 0 was evicted with the token; refetching must re-detect it.
        with pytest.raises(RestException):
            h.read(0x0, 8)

    def test_writeback_all_materialises_tokens(self):
        h = make_hierarchy()
        token = h.detector.token
        h.arm(0x2000)
        h.writeback_all()
        assert h.backing.read(0x2000, 64) == token.value
        # And the token survives a cold refetch.
        with pytest.raises(RestException):
            h.read(0x2000, 4)

    def test_is_armed_probe(self):
        h = make_hierarchy()
        h.arm(0x3000)
        assert h.is_armed(0x3000)
        assert not h.is_armed(0x3040)
        h.writeback_all()
        assert h.is_armed(0x3000)  # now via backing-store pattern
        h.disarm(0x3000)
        assert not h.is_armed(0x3000)


class TestModes:
    def test_secure_mode_imprecise_loads(self):
        h = make_hierarchy(mode=Mode.SECURE)
        h.arm(0x1000)
        with pytest.raises(RestException) as info:
            h.read(0x1000, 8)
        assert not info.value.precise

    def test_debug_mode_precise_loads(self):
        h = make_hierarchy(mode=Mode.DEBUG)
        h.arm(0x1000)
        with pytest.raises(RestException) as info:
            h.read(0x1000, 8)
        assert info.value.precise

    def test_debug_mode_token_hold_latency(self):
        """Debug holds loads in MSHRs while the word matches the token."""
        h = tiny_hierarchy(mode=Mode.DEBUG)
        h.arm(0x0)
        set_stride = h.l1d.config.num_sets * 64
        h.read(set_stride, 4)
        h.read(2 * set_stride, 4)  # evict armed line to memory
        before = h.l1d.mshrs.token_holds
        with pytest.raises(RestException):
            h.read(0x0, 8)  # miss on a token line
        assert h.l1d.mshrs.token_holds == before + 1


class TestPrivilegeAndStats:
    def test_syscall_access_to_token_raises(self):
        """Token manipulation via syscalls is prevented (paper §V-C)."""
        h = make_hierarchy()
        h.arm(0x1000)
        with pytest.raises(RestException) as info:
            h.read(0x1000, 8, privilege=PrivilegeLevel.SUPERVISOR)
        assert info.value.kind is RestFaultKind.SYSCALL_TOUCHED_TOKEN

    def test_stats_counters(self):
        h = make_hierarchy()
        h.arm(0x1000)
        h.disarm(0x1000)
        h.arm(0x2000)
        with pytest.raises(RestException):
            h.read(0x2000, 4)
        assert h.stats.arms == 2
        assert h.stats.disarms == 1
        assert h.stats.token_faults == 1

    def test_tokens_at_memory_interface_counted(self):
        h = tiny_hierarchy()
        h.arm(0x0)
        set_stride = h.l1d.config.num_sets * 64
        # Thrash both L1 and L2 so the token line reaches memory and back.
        for i in range(1, 40):
            h.read(i * set_stride, 4)
        with pytest.raises(RestException):
            h.read(0x0, 4)
        assert h.stats.tokens_at_memory_interface >= 1


class TestEvictionWriteBufferContention:
    """Regression tests: a dirty victim's writeback must contend for the
    write buffer (stall the fill) instead of leaving for free, and MSHR
    exhaustion must not wipe the whole file or recount misses."""

    def _contended_hierarchy(self, **kwargs):
        reg = TokenConfigRegister(Token.random(64, seed=1))
        config = HierarchyConfig(
            l1d=CacheConfig(
                name="L1-D", size=512, associativity=2, line_size=64
            ),
            l2=CacheConfig(
                name="L2", size=2048, associativity=2, line_size=64,
                hit_latency=20,
            ),
            **kwargs,
        )
        return MemoryHierarchy(config=config, token_config=reg)

    def _fill_write_buffer(self, h):
        buffer = h.l1d.write_buffer
        # Past full even after the per-access background drain.
        buffer._occupancy = buffer.entries + buffer.drain_per_access
        return buffer

    def _force_dirty_eviction(self, h):
        """Dirty a line, then read two more lines of the same set."""
        set_stride = h.l1d.config.num_sets * 64
        h.write(0x0, b"dirty!")
        latency = 0
        for probe in (set_stride, 2 * set_stride):
            latency += h.read(probe, 4)[1].latency
        return latency

    def test_full_buffer_stalls_fill_when_enabled(self):
        h = self._contended_hierarchy(eviction_port_stalls=True)
        baseline = self._force_dirty_eviction(h)

        h2 = self._contended_hierarchy(eviction_port_stalls=True)
        h2.write(0x0, b"dirty!")
        buffer = self._fill_write_buffer(h2)
        stalls_before = buffer.full_stalls
        set_stride = h2.l1d.config.num_sets * 64
        latency = (
            h2.read(set_stride, 4)[1].latency
            + h2.read(2 * set_stride, 4)[1].latency
        )
        # The eviction found the buffer full: the fill was stalled and
        # the stall was accounted — the writeback was not dropped.
        assert buffer.full_stalls > stalls_before
        assert latency > baseline

    def test_writeback_still_reaches_l2_when_buffer_full(self):
        h = self._contended_hierarchy(eviction_port_stalls=True)
        h.write(0x0, b"dirty!")
        self._fill_write_buffer(h)
        set_stride = h.l1d.config.num_sets * 64
        h.read(set_stride, 4)
        h.read(2 * set_stride, 4)  # evicts the dirty line
        l2_line = h.l2.lookup(0x0)
        assert l2_line is not None and l2_line.dirty

    def test_legacy_default_timing_unchanged(self):
        """Default config pins the golden timing: evictions bypass the
        write buffer, so a full buffer must not change fill latency."""
        quiet = self._contended_hierarchy()
        baseline = self._force_dirty_eviction(quiet)

        contended = self._contended_hierarchy()
        contended.write(0x0, b"dirty!")
        buffer = self._fill_write_buffer(contended)
        inserts_before = buffer.inserts
        set_stride = contended.l1d.config.num_sets * 64
        latency = (
            contended.read(set_stride, 4)[1].latency
            + contended.read(2 * set_stride, 4)[1].latency
        )
        assert latency == baseline
        assert buffer.inserts == inserts_before


class TestMshrExhaustion:
    def test_retire_blocking_frees_one_register_only(self):
        from repro.cache.mshr import MshrFile

        mshrs = MshrFile(registers=2, entries_per_register=2)
        mshrs.allocate(0x000)
        mshrs.allocate(0x040)
        assert mshrs.allocate(0x080) is None  # file full
        mshrs.retire_blocking(0x080)
        # Exactly one (the oldest) register retired; the other survives.
        assert mshrs.occupancy == 1
        assert mshrs.lookup(0x040) is not None
        assert mshrs.allocate(0x080) is not None

    def test_retire_blocking_prefers_the_matching_register(self):
        from repro.cache.mshr import MshrFile

        mshrs = MshrFile(registers=2, entries_per_register=1)
        mshrs.allocate(0x000)
        mshrs.allocate(0x040)
        assert mshrs.allocate(0x040) is None  # merge capacity exhausted
        mshrs.retire_blocking(0x040)
        assert mshrs.lookup(0x040) is None
        assert mshrs.lookup(0x000) is not None  # untouched

    def test_exhaustion_counts_each_miss_once(self):
        """Exercise the hierarchy's stall path directly: stats must
        count one miss and one stall cycle, and other in-flight
        registers must survive the retry."""
        from repro.cache.hierarchy import AccessResult

        reg = TokenConfigRegister(Token.random(64, seed=1))
        h = MemoryHierarchy(token_config=reg)
        # Pin the MSHR file full with unrelated outstanding misses.
        mshrs = h.l1d.mshrs
        for i in range(mshrs.registers):
            assert mshrs.allocate(0x100000 + 64 * i) is not None
        allocations_before = mshrs.allocations
        misses_before = h.l1d.stats.misses
        result = AccessResult(latency=0)
        h._fetch_into_l1(0x2000, result)
        assert h.l1d.stats.misses == misses_before + 1
        assert h.l1d.stats.mshr_stall_cycles == 1
        # One register retired for the stall, one allocated for the new
        # miss (and released on fill completion); the rest survive.
        assert mshrs.occupancy == mshrs.registers - 1
        assert mshrs.allocations == allocations_before + 1
