"""Tests for the §VIII / §V-C extensions: the REST-native fast
allocator, token sprinkling, and layout randomization."""

import pytest

from repro.core import RestException
from repro.defenses import RestDefense
from repro.runtime import ExecutionMode, FastRestAllocator, Machine, RestAllocator
from repro.cpu.isa import OpType


class TestFastRestAllocator:
    def test_same_protection_overflow(self):
        machine = Machine()
        alloc = FastRestAllocator(machine)
        ptr = alloc.malloc(64)
        with pytest.raises(RestException):
            machine.load(ptr + 64, 8)  # the shared guard

    def test_same_protection_underflow(self):
        machine = Machine()
        alloc = FastRestAllocator(machine)
        ptr = alloc.malloc(64)
        with pytest.raises(RestException):
            machine.load(ptr - 8, 8)

    def test_same_protection_uaf(self):
        machine = Machine()
        alloc = FastRestAllocator(machine)
        ptr = alloc.malloc(128)
        alloc.free(ptr)
        with pytest.raises(RestException):
            machine.load(ptr, 8)

    def test_double_free_detected(self):
        alloc = FastRestAllocator(Machine())
        ptr = alloc.malloc(64)
        alloc.free(ptr)
        with pytest.raises(RestException):
            alloc.free(ptr)

    def test_neighbours_share_one_guard(self):
        """Chunks from one slab are separated by exactly one token."""
        machine = Machine()
        alloc = FastRestAllocator(machine)
        a = alloc.malloc(64)
        b = alloc.malloc(64)
        assert abs(b - a) == 64 + machine.token_width

    def test_steady_state_malloc_needs_no_arms(self):
        """After the slab exists, malloc is arm-free (the headline
        improvement over the ASan-derived allocator)."""
        machine = Machine(mode=ExecutionMode.TRACE)
        alloc = FastRestAllocator(machine)
        alloc.malloc(64)  # carves the slab
        machine.take_trace()
        alloc.malloc(64)  # steady state
        arms = sum(1 for u in machine.take_trace() if u.op is OpType.ARM)
        assert arms == 0

    def test_cheaper_than_asan_derived(self):
        """Fewer machine ops per malloc/free cycle than the baseline."""

        def ops_for(allocator_cls):
            machine = Machine(mode=ExecutionMode.TRACE)
            alloc = allocator_cls(machine, quarantine_bytes=4096)
            ptrs = [alloc.malloc(96) for _ in range(64)]
            for ptr in ptrs:
                alloc.free(ptr)
            for _ in range(64):
                alloc.free(alloc.malloc(96))
            return len(machine.take_trace())

        assert ops_for(FastRestAllocator) < ops_for(RestAllocator)

    def test_lower_memory_overhead(self):
        fast = FastRestAllocator(Machine())
        base = RestAllocator(Machine())
        for _ in range(32):
            fast.malloc(64)
            base.malloc(64)
        assert (
            fast.stats.memory_overhead_ratio
            < base.stats.memory_overhead_ratio
        )

    def test_quarantine_then_reuse_zeroed(self):
        machine = Machine()
        alloc = FastRestAllocator(machine, quarantine_bytes=0)
        a = alloc.malloc(64)
        machine.store(a, b"stale!!!")
        alloc.free(a)  # drains immediately, disarm zeroes
        b = alloc.malloc(64)
        if b == a:
            assert machine.load(b, 8) == b"\x00" * 8

    def test_huge_allocation_sandwich_path(self):
        machine = Machine()
        alloc = FastRestAllocator(machine)
        ptr = alloc.malloc(256 * 1024)
        with pytest.raises(RestException):
            machine.load(ptr - 8, 8)
        alloc.free(ptr)  # munmap path: disarms its redzones
        machine.load(ptr - 64, 8)  # guards gone with the mapping

    def test_defense_integration(self):
        defense = RestDefense(Machine(), allocator="fast")
        ptr = defense.malloc(100)
        with pytest.raises(RestException):
            defense.load(ptr + 128, 8)

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ValueError):
            RestDefense(Machine(), allocator="tcmalloc")


class TestTokenSprinkling:
    def test_decoys_armed(self):
        machine = Machine()
        defense = RestDefense(machine)
        addresses = defense.sprinkle_tokens(0x40000, 64 * 64, count=8, seed=1)
        assert len(addresses) == 8
        for address in addresses:
            assert machine.hierarchy.is_armed(address)

    def test_decoys_catch_region_scans(self):
        """A sweep across the sprinkled region hits a decoy."""
        machine = Machine()
        defense = RestDefense(machine)
        defense.sprinkle_tokens(0x40000, 64 * 64, count=16, seed=2)
        with pytest.raises(RestException):
            for offset in range(0, 64 * 64, 8):
                machine.load(0x40000 + offset, 8)

    def test_unsprinkle(self):
        machine = Machine()
        defense = RestDefense(machine)
        addresses = defense.sprinkle_tokens(0x40000, 64 * 16, count=4, seed=3)
        defense.unsprinkle(addresses)
        for offset in range(0, 64 * 16, 8):
            machine.load(0x40000 + offset, 8)
        assert defense.sprinkled_tokens == []

    def test_too_many_decoys_rejected(self):
        defense = RestDefense(Machine())
        with pytest.raises(ValueError):
            defense.sprinkle_tokens(0x40000, 64 * 4, count=10)

    def test_deterministic_by_seed(self):
        a = RestDefense(Machine()).sprinkle_tokens(0x40000, 64 * 64, 8, seed=7)
        b = RestDefense(Machine()).sprinkle_tokens(0x40000, 64 * 64, 8, seed=7)
        assert a == b


class TestLayoutRandomization:
    def test_deltas_become_unpredictable(self):
        """With randomization, the displacement between two fresh
        allocations varies run to run — the attacker cannot precompute
        the redzone jump (§V-C)."""

        def delta(seed):
            alloc = RestAllocator(
                Machine(), randomize_slack_tokens=8, randomize_seed=seed
            )
            a = alloc.malloc(64)
            b = alloc.malloc(64)
            return b - a

        deltas = {delta(seed) for seed in range(12)}
        assert len(deltas) > 3

    def test_protection_unchanged(self):
        machine = Machine()
        alloc = RestAllocator(machine, randomize_slack_tokens=8)
        ptr = alloc.malloc(64)
        with pytest.raises(RestException):
            machine.load(ptr + 64, 8)

    def test_disabled_by_default(self):
        def delta():
            alloc = RestAllocator(Machine())
            return alloc.malloc(64), alloc.malloc(64)

        assert delta() == delta()
