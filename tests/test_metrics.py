"""Tests for the paper's overhead aggregation (footnotes 5 and 6)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.harness.metrics import (
    geo_mean_overhead,
    overhead_percent,
    weighted_mean_overhead,
)


class TestOverheadPercent:
    def test_basic(self):
        assert overhead_percent(140, 100) == pytest.approx(40.0)
        assert overhead_percent(100, 100) == pytest.approx(0.0)

    def test_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            overhead_percent(100, 0)


class TestWeightedMean:
    def test_footnote5_reduction(self):
        """The footnote's formula reduces to sum(r)/sum(p) - 1."""
        runtimes = [120.0, 300.0, 50.0]
        plains = [100.0, 250.0, 40.0]
        expected = (sum(runtimes) / sum(plains) - 1) * 100
        assert weighted_mean_overhead(runtimes, plains) == pytest.approx(
            expected
        )

    def test_weighting_by_plain_runtime(self):
        """A slow benchmark's overhead dominates the weighted mean."""
        # benchmark A: plain 1000, 50% overhead; B: plain 10, 500%.
        runtimes = [1500.0, 60.0]
        plains = [1000.0, 10.0]
        wtd = weighted_mean_overhead(runtimes, plains)
        geo = geo_mean_overhead(runtimes, plains)
        assert abs(wtd - 54.5) < 1.0  # near A's 50%, not B's 500%
        assert geo > 150  # the geo mean is pulled by B

    def test_identity(self):
        assert weighted_mean_overhead([5, 7], [5, 7]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_mean_overhead([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_mean_overhead([], [])
        with pytest.raises(ValueError):
            weighted_mean_overhead([1.0], [0.0])


class TestGeoMean:
    def test_footnote6(self):
        runtimes = [200.0, 50.0]
        plains = [100.0, 100.0]
        # geomean(2.0, 0.5) = 1.0 -> 0% overhead
        assert geo_mean_overhead(runtimes, plains) == pytest.approx(0.0)

    def test_uniform_overhead(self):
        assert geo_mean_overhead([110, 220], [100, 200]) == pytest.approx(
            10.0
        )

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e6),
                st.floats(min_value=1.0, max_value=1e6),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_geo_mean_bounded_by_extremes(self, pairs):
        runtimes = [r for r, _ in pairs]
        plains = [p for _, p in pairs]
        ratios = [r / p for r, p in pairs]
        geo = geo_mean_overhead(runtimes, plains) / 100 + 1
        assert min(ratios) - 1e-9 <= geo <= max(ratios) + 1e-9


class TestDegenerateInputs:
    """Regression tests: degenerate inputs raise instead of poisoning
    aggregates (zero baselines, zero/negative runtimes)."""

    def test_overhead_percent_rejects_negative_baseline(self):
        with pytest.raises(ValueError):
            overhead_percent(100, -5)

    def test_overhead_percent_rejects_zero_runtime(self):
        with pytest.raises(ValueError, match="runtime must be positive"):
            overhead_percent(0, 100)

    def test_overhead_percent_rejects_negative_runtime(self):
        with pytest.raises(ValueError, match="runtime must be positive"):
            overhead_percent(-40, 100)

    def test_geo_mean_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            geo_mean_overhead([100.0], [0.0])

    def test_geo_mean_rejects_negative_runtime(self):
        with pytest.raises(ValueError):
            geo_mean_overhead([-100.0], [100.0])

    def test_geo_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geo_mean_overhead([], [])


class TestProgramMeasurementOverhead:
    def _measurement(self, cycles, faulted=None):
        from repro.lang.measure import ProgramMeasurement

        return ProgramMeasurement(
            spec_name="Plain",
            cycles=cycles,
            instructions=10,
            arms=0,
            disarms=0,
            faulted=faulted,
        )

    def test_overhead_vs_normal(self):
        slow = self._measurement(150)
        fast = self._measurement(100)
        assert slow.overhead_vs(fast) == pytest.approx(50.0)

    def test_zero_cycle_baseline_raises_value_error(self):
        """Used to raise a bare ZeroDivisionError."""
        measurement = self._measurement(150)
        baseline = self._measurement(0)
        with pytest.raises(ValueError, match="no cycles"):
            measurement.overhead_vs(baseline)

    def test_faulted_baseline_is_diagnosed(self):
        measurement = self._measurement(150)
        baseline = self._measurement(0, faulted="RestException")
        with pytest.raises(ValueError, match="faulted: RestException"):
            measurement.overhead_vs(baseline)
