"""Recursion and deeper interpreter behaviour in Mini-C."""

import pytest

from repro.core import RestException
from repro.defenses import PlainDefense, RestDefense
from repro.lang import Interpreter, parse
from repro.runtime import Machine


def run(source, defense=None, *args):
    defense = defense or PlainDefense(Machine())
    return Interpreter(parse(source), defense).run(*args)


class TestRecursion:
    FIB = """
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main(int n) { return fib(n); }
    """

    def test_fibonacci(self):
        assert run(self.FIB, None, 10) == 55

    def test_fibonacci_under_rest_stack_protection(self):
        """Recursive frames with protected arrays arm/disarm cleanly."""
        source = """
        int depth_sum(int n) {
            int scratch[8];
            scratch[0] = n;
            if (n == 0) { return 0; }
            return scratch[0] + depth_sum(n - 1);
        }
        int main() { return depth_sum(12); }
        """
        defense = RestDefense(Machine(), protect_stack=True)
        assert run(source, defense) == sum(range(13))
        assert defense.stack.depth == 0  # every frame unwound

    def test_mutual_recursion(self):
        source = """
        int is_even(int n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        int main() { return is_even(10) + is_odd(7) * 10; }
        """
        assert run(source) == 1 + 10

    def test_deep_recursion_overflow_in_protected_frames(self):
        """Unbounded recursion exhausts the simulated stack."""
        from repro.runtime.layout import AddressSpaceLayout
        from repro.runtime.stack import StackOverflowError

        source = """
        int spin(int n) {
            int pad[64];
            pad[0] = n;
            return spin(n + 1);
        }
        int main() { return spin(0); }
        """
        # A small simulated stack so its limit is reached well before
        # the host interpreter's own recursion limit.
        layout = AddressSpaceLayout(stack_size=32 * 1024)
        defense = RestDefense(Machine(layout=layout))
        with pytest.raises(StackOverflowError):
            run(source, defense)


class TestInterpreterMisc:
    def test_array_address_passed_to_callee(self):
        """Arrays decay to pointers across calls (C semantics) — and a
        callee overflowing the caller's array hits the caller's
        redzone."""
        source = """
        int fill(int buffer, int n) {
            for (i = 0; i < n; i++) { buffer[i] = i; }
            return 0;
        }
        int main() {
            int local[8];
            fill(local, 8);
            return local[7];
        }
        """
        assert run(source, RestDefense(Machine())) == 7

    def test_callee_overflows_callers_buffer(self):
        source = """
        int fill(int buffer, int n) {
            for (i = 0; i < n; i++) { buffer[i] = i; }
            return 0;
        }
        int main() {
            int local[8];
            fill(local, 64);
            return 0;
        }
        """
        with pytest.raises(RestException):
            run(source, RestDefense(Machine()))
        run(source)  # plain: silent

    def test_nested_array_frames_isolated(self):
        source = """
        int inner() {
            int mine[4];
            mine[0] = 111;
            return mine[0];
        }
        int main() {
            int ours[4];
            ours[0] = 7;
            int got = inner();
            return ours[0] + got;
        }
        """
        assert run(source, RestDefense(Machine())) == 118
