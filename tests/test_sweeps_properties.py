"""Property-based tests for SweepResult statistics and seed_sweep
contracts: the invariants every sweep report relies on, driven by
Hypothesis over random sample sets."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.configs import DefenseSpec
from repro.harness.sweeps import SweepResult, seed_sweep
from repro.workloads.spec import profile_by_name

#: Overhead percentages span roughly -50 .. +500 in practice; test a
#: wider, still finite-and-sane magnitude range.
overheads = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(overheads, min_size=1, max_size=40)


class TestSweepResultInvariants:
    @given(samples=sample_lists)
    @settings(max_examples=200, deadline=None)
    def test_statistics_invariants(self, samples):
        result = SweepResult(spec_name="x", samples=samples)
        assert result.stdev >= 0.0
        assert min(samples) - 1e-9 <= result.mean <= max(samples) + 1e-9
        assert result.spread == max(samples) - min(samples)
        assert result.spread >= 0.0

    @given(value=overheads)
    def test_single_sample_degenerates(self, value):
        result = SweepResult(spec_name="x", samples=[value])
        assert result.stdev == 0.0
        assert result.spread == 0.0
        assert result.mean == value

    @given(value=overheads, count=st.integers(min_value=2, max_value=20))
    def test_constant_samples_zero_stdev_and_spread(self, value, count):
        result = SweepResult(spec_name="x", samples=[value] * count)
        assert result.stdev == pytest.approx(0.0, abs=1e-6)
        assert result.spread == 0.0
        assert result.mean == pytest.approx(value)

    def test_stdev_matches_textbook_formula(self):
        rng = random.Random(7)
        samples = [rng.gauss(0, 5) for _ in range(25)]
        result = SweepResult(spec_name="x", samples=samples)
        mu = sum(samples) / len(samples)
        expected = math.sqrt(
            sum((x - mu) ** 2 for x in samples) / (len(samples) - 1)
        )
        assert math.isclose(result.stdev, expected)

    @given(
        samples=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=2, max_size=15
        ),
        shift=st.floats(min_value=-1e3, max_value=1e3),
    )
    @settings(max_examples=100, deadline=None)
    def test_translation_invariance_of_spread_and_stdev(self, samples, shift):
        base = SweepResult(spec_name="x", samples=samples)
        moved = SweepResult(
            spec_name="x", samples=[x + shift for x in samples]
        )
        assert moved.spread == pytest.approx(base.spread, abs=1e-6)
        assert moved.stdev == pytest.approx(base.stdev, abs=1e-6)
        assert moved.mean == pytest.approx(base.mean + shift, abs=1e-6)


class TestSeedSweepContracts:
    def test_empty_seeds_raises_value_error(self):
        with pytest.raises(ValueError):
            seed_sweep(
                [profile_by_name("sjeng")],
                [DefenseSpec.rest("Secure Full")],
                seeds=(),
            )

    def test_duplicate_seeds_raise_value_error(self):
        with pytest.raises(ValueError, match="unique"):
            seed_sweep(
                [profile_by_name("sjeng")],
                [DefenseSpec.rest("Secure Full")],
                seeds=(1, 1),
            )

    def test_sample_count_matches_seed_count(self):
        sweep = seed_sweep(
            [profile_by_name("sjeng")],
            [DefenseSpec.rest("Secure Full")],
            seeds=(1, 2, 3),
            scale=0.05,
        )
        assert len(sweep["Secure Full"].samples) == 3
