"""Tests for the suite regression comparator."""

import pytest

from repro.harness.configs import DefenseSpec, SimulationConfig
from repro.harness.experiment import run_suite
from repro.harness.persistence import save_suite, suite_to_dict
from repro.harness.regression import (
    compare_suites,
    format_comparison,
    regressions,
)
from repro.workloads.spec import profile_by_name


@pytest.fixture(scope="module")
def saved_suites(tmp_path_factory):
    root = tmp_path_factory.mktemp("suites")
    profiles = [profile_by_name("sjeng")]
    specs = [DefenseSpec.rest("Secure Full")]
    a = run_suite(profiles, specs, SimulationConfig(scale=0.05, seed=1))
    b = run_suite(profiles, specs, SimulationConfig(scale=0.05, seed=2))
    path_a = save_suite(a, root / "a.json")
    path_b = save_suite(b, root / "b.json")
    return path_a, path_b


class TestCompare:
    def test_identical_suites_zero_change(self, saved_suites):
        path_a, _ = saved_suites
        deltas = compare_suites(path_a, path_a)
        assert deltas
        assert all(d.change == 0 for d in deltas)
        assert regressions(deltas, tolerance_pp=0.5) == []

    def test_different_seeds_produce_deltas(self, saved_suites):
        path_a, path_b = saved_suites
        deltas = compare_suites(path_a, path_b)
        assert {d.spec for d in deltas} == {"Secure Full"}
        report = format_comparison(deltas, tolerance_pp=0.0001)
        assert "Secure Full" in report
        assert "comparisons" in report

    def test_synthetic_regression_flagged(self):
        before = {
            "results": {
                "x": {
                    "Plain": {"cycles": 1000},
                    "Secure": {"cycles": 1020},
                }
            }
        }
        after = {
            "results": {
                "x": {
                    "Plain": {"cycles": 1000},
                    "Secure": {"cycles": 1100},
                }
            }
        }
        deltas = compare_suites(before, after)
        assert deltas[0].change == pytest.approx(8.0)
        assert regressions(deltas, tolerance_pp=2.0) == deltas
        assert "!!" in format_comparison(deltas)

    def test_disjoint_suites_rejected(self):
        a = {"results": {"x": {"Plain": {"cycles": 1}, "S": {"cycles": 1}}}}
        b = {"results": {"y": {"Plain": {"cycles": 1}, "S": {"cycles": 1}}}}
        with pytest.raises(ValueError):
            compare_suites(a, b)

    def test_missing_baseline_rejected(self):
        bad = {"results": {"x": {"Secure": {"cycles": 10}}}}
        with pytest.raises(ValueError):
            compare_suites(bad, bad)
