"""Regression lock: the hand-written attack suite × defense matrix.

``results/attack_matrix_golden.json`` pins the outcome of every
registered attack (the Table III suite plus later additions) across all
canonical defense modes.  Any drift — a detection becoming a miss, a
new attack landing without a golden update, a defense mode changing
behaviour — fails here with the exact cells that moved.

Regenerate intentionally with ``PYTHONPATH=src python
tools/foundry_golden.py`` and commit the diff.
"""

import json
from pathlib import Path

from repro.defenses import DEFENSE_MODES
from repro.foundry.matrix import ATTACK_MATRIX_SCHEMA, handwritten_matrix
from repro.workloads.attacks import ATTACK_REGISTRY

GOLDEN = (
    Path(__file__).resolve().parent.parent
    / "results"
    / "attack_matrix_golden.json"
)


def _diff_cells(golden, fresh):
    """Human-readable list of (attack, defense) cells that changed."""
    moved = []
    attacks = sorted(set(golden["attacks"]) | set(fresh["attacks"]))
    for attack in attacks:
        old = golden["attacks"].get(attack)
        new = fresh["attacks"].get(attack)
        if old == new:
            continue
        if old is None or new is None:
            moved.append(f"{attack}: {'added' if old is None else 'removed'}")
            continue
        for mode in DEFENSE_MODES:
            if old.get(mode) != new.get(mode):
                moved.append(
                    f"{attack}/{mode}: {old.get(mode)} -> {new.get(mode)}"
                )
    return moved


class TestAttackMatrixGolden:
    def test_schema_and_axes(self):
        golden = json.loads(GOLDEN.read_text())
        assert golden["schema"] == ATTACK_MATRIX_SCHEMA
        assert tuple(golden["defenses"]) == DEFENSE_MODES
        # Every registered attack is pinned; no stale entries linger.
        assert sorted(golden["attacks"]) == sorted(ATTACK_REGISTRY)

    def test_every_outcome_matches_golden(self):
        golden = json.loads(GOLDEN.read_text())
        fresh = handwritten_matrix()
        moved = _diff_cells(golden, fresh)
        assert not moved, (
            "attack outcome drift (regenerate via tools/foundry_golden.py "
            "only if intended):\n  " + "\n  ".join(moved)
        )
        assert fresh == golden
