"""Tests for the synthetic workload generator and SPEC profiles."""

import pytest

from repro.cpu import OpType
from repro.defenses import PlainDefense, RestDefense
from repro.runtime import ExecutionMode, Machine
from repro.workloads import ALL_PROFILES, SyntheticWorkload, profile_by_name


def run_workload(profile_name, defense_cls=PlainDefense, seed=1, scale=0.1,
                 intensity=25.0):
    machine = Machine(mode=ExecutionMode.TRACE)
    defense = defense_cls(machine)
    workload = SyntheticWorkload(
        profile_by_name(profile_name),
        defense,
        seed=seed,
        scale=scale,
        alloc_intensity=intensity,
    )
    stats = workload.run()
    return machine.take_trace(), stats


class TestProfiles:
    def test_twelve_benchmarks(self):
        assert len(ALL_PROFILES) == 12
        names = {p.name for p in ALL_PROFILES}
        assert {"gcc", "xalancbmk", "lbm", "sjeng", "hmmer"} <= names

    def test_paper_cited_characteristics(self):
        # xalanc: 0.2 allocations per kilo-instruction (paper VI-B).
        assert profile_by_name("xalancbmk").allocs_per_kilo == 0.2
        # lbm and sjeng: fewer than 10 allocation calls overall.
        assert profile_by_name("lbm").allocs_per_kilo == 0.0
        assert profile_by_name("sjeng").allocs_per_kilo == 0.0

    def test_fractions_sane(self):
        for profile in ALL_PROFILES:
            assert 0 < profile.mem_fraction < 0.6
            assert profile.mem_fraction + profile.branch_fraction < 0.8
            assert 0 <= profile.branch_bias <= 1

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("perlbench")

    def test_scaled_instructions_floor(self):
        profile = profile_by_name("gcc")
        assert profile.scaled_instructions(0.0000001) == 1000


class TestGeneration:
    def test_deterministic_across_runs(self):
        trace_a, _ = run_workload("gcc", seed=5)
        trace_b, _ = run_workload("gcc", seed=5)
        assert len(trace_a) == len(trace_b)
        assert all(
            x.op is y.op and x.address == y.address
            for x, y in zip(trace_a, trace_b)
        )

    def test_seed_changes_trace(self):
        trace_a, _ = run_workload("gcc", seed=5)
        trace_b, _ = run_workload("gcc", seed=6)
        assert any(
            x.op is not y.op or x.address != y.address
            for x, y in zip(trace_a, trace_b)
        )

    def test_app_behaviour_same_across_defenses(self):
        """The *application* behaviour (allocs, accesses) must not
        depend on the defense — only the added work does."""
        _, plain_stats = run_workload("xalancbmk", PlainDefense)
        _, rest_stats = run_workload("xalancbmk", RestDefense)
        assert plain_stats.app_instructions == rest_stats.app_instructions
        assert plain_stats.mallocs == rest_stats.mallocs
        assert plain_stats.calls == rest_stats.calls

    def test_instruction_budget_respected(self):
        _, stats = run_workload("bzip2", scale=0.1)
        budget = profile_by_name("bzip2").scaled_instructions(0.1)
        assert stats.app_instructions == budget

    def test_op_mix_tracks_profile(self):
        trace, stats = run_workload("lbm", scale=0.25)
        profile = profile_by_name("lbm")
        loads = sum(1 for u in trace if u.op is OpType.LOAD)
        stores = sum(1 for u in trace if u.op is OpType.STORE)
        n = stats.app_instructions
        assert abs(loads / n - profile.load_fraction) < 0.05
        assert abs(stores / n - profile.store_fraction) < 0.05

    def test_alloc_rate_scales_with_intensity(self):
        _, low = run_workload("gcc", intensity=5.0)
        _, high = run_workload("gcc", intensity=50.0)
        assert high.mallocs > low.mallocs

    def test_no_allocs_for_lbm(self):
        _, stats = run_workload("lbm")
        assert stats.mallocs == 0

    def test_rest_trace_contains_arms(self):
        trace, _ = run_workload("xalancbmk", RestDefense)
        arms = sum(1 for u in trace if u.op is OpType.ARM)
        assert arms > 0

    def test_plain_trace_contains_no_arms(self):
        trace, _ = run_workload("xalancbmk", PlainDefense)
        assert all(u.op not in (OpType.ARM, OpType.DISARM) for u in trace)

    def test_live_set_released_at_teardown(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        defense = PlainDefense(machine)
        workload = SyntheticWorkload(
            profile_by_name("gcc"), defense, scale=0.1
        )
        stats = workload.run()
        assert stats.mallocs == stats.frees
        assert defense.allocator.stats.live_allocations == 0


class TestReplayability:
    def test_rest_trace_replays_without_fault(self):
        """The benign trace must replay cleanly on REST hardware —
        arm/disarm ordering is preserved through the allocator."""
        from repro.cache import MemoryHierarchy
        from repro.cpu import OutOfOrderCore

        trace, _ = run_workload("xalancbmk", RestDefense, scale=0.05)
        core = OutOfOrderCore(MemoryHierarchy())
        stats = core.run(trace)
        assert stats.committed == len(trace)
