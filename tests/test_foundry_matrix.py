"""End-to-end matrix pipeline: determinism, paper seams, golden lock.

The headline guarantees of the foundry artifact:

* a fixed seed produces a byte-identical ``CoverageMatrix`` whether the
  result cache is cold or warm (acceptance criterion of the corpus
  runner);
* the matrix *quantifies* REST's documented §V-C false negatives —
  pad landings and targeted corruption score MISSED under ``rest``
  while ASan's byte-granular redzones keep catching the former;
* the CI smoke corpus reproduces the committed golden byte-for-byte.
"""

import functools
import json
from pathlib import Path

from repro.foundry.matrix import matrix_to_json
from repro.foundry.runner import run_foundry
from repro.harness.parallel import ResultCache

GOLDEN = (
    Path(__file__).resolve().parent.parent
    / "results"
    / "foundry_matrix_golden.json"
)

# One small corpus shared by the tests below; 36 cases → 4 per family.
SEED, CASES = 11, 36


@functools.lru_cache(maxsize=1)
def _small_matrix():
    return run_foundry(SEED, CASES)


class TestDeterminism:
    def test_cold_vs_warm_cache_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_foundry(3, 18, jobs=2, cache=cache)
        warm = run_foundry(3, 18, jobs=2, cache=cache)
        assert matrix_to_json(cold) == matrix_to_json(warm)
        # The warm pass actually came from the cache, not a re-run.
        uncached = run_foundry(3, 18, jobs=2)
        assert matrix_to_json(uncached) == matrix_to_json(cold)


class TestPaperSeams:
    def test_no_oracle_mispredictions(self):
        matrix = _small_matrix()
        assert matrix["mispredictions"] == []
        assert matrix["asan_expected_detect_missed"] == []

    def test_rest_misses_pad_landings_asan_catches(self):
        cells = _small_matrix()["cells"]["pad_landing"]
        assert cells["rest"]["missed"] == cells["rest"]["total"]
        assert cells["asan"]["detected"] == cells["asan"]["total"]

    def test_targeted_corruption_evades_everything(self):
        cells = _small_matrix()["cells"]["targeted_jump"]
        for defense in ("none", "asan", "rest", "softrest"):
            assert cells[defense]["missed"] == cells[defense]["total"]

    def test_rest_false_negatives_quantified(self):
        rest_fn = _small_matrix()["rest_false_negatives"]
        assert rest_fn["total"] > 0
        assert rest_fn["by_family"].get("pad_landing") == \
            _small_matrix()["cells"]["pad_landing"]["rest"]["total"]
        assert "targeted_jump" in rest_fn["by_family"]

    def test_detection_latency_populated(self):
        latency = _small_matrix()["latency"]
        assert latency["none"]["count"] == 0
        for defense in ("asan", "rest"):
            stats = latency[defense]
            assert stats["count"] > 0
            # min can be 0: a phase whose very first access faults
            # accrues no functional cycles before the trap.
            assert 0 <= stats["min"] <= stats["p50"] <= stats["p90"] <= stats["max"]
            assert stats["max"] > 0


class TestGoldenLock:
    def test_smoke_corpus_reproduces_golden(self):
        golden = json.loads(GOLDEN.read_text())
        matrix = run_foundry(golden["seed"], golden["cases"], jobs=2)
        assert matrix_to_json(matrix) == GOLDEN.read_text()
