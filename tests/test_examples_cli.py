"""Smoke tests: every example script and CLI command runs clean."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, monkeypatch):
    # overhead_comparison reads argv; pin it to a fast configuration.
    if script.stem == "overhead_comparison":
        monkeypatch.setattr(sys, "argv", [str(script), "sjeng", "0.05"])
    else:
        monkeypatch.setattr(sys, "argv", [str(script)])
    captured = io.StringIO()
    with redirect_stdout(captured):
        runpy.run_path(str(script), run_name="__main__")
    output = captured.getvalue()
    assert output.strip(), f"{script.stem} produced no output"
    assert "!!" not in output, f"{script.stem} reported a failure:\n{output}"


class TestCli:
    def _run(self, argv):
        from repro.__main__ import main

        captured = io.StringIO()
        with redirect_stdout(captured):
            code = main(argv)
        return code, captured.getvalue()

    def test_demo(self):
        code, output = self._run(["demo"])
        assert code == 0
        assert "token" in output

    def test_config(self):
        code, output = self._run(["config"])
        assert code == 0
        assert "DDR3" in output

    def test_attack_single(self):
        code, output = self._run(
            ["attack", "heartbleed", "--defense", "rest"]
        )
        assert code == 0
        assert "detected" in output

    def test_attack_unknown(self):
        code, _ = self._run(["attack", "nonsense"])
        assert code == 2

    def test_experiments_table2(self):
        code, output = self._run(["experiments", "table2"])
        assert code == 0
        assert "2 GHz" in output

    def test_experiments_unknown(self):
        code, _ = self._run(["experiments", "fig99"])
        assert code == 2

    def test_experiments_table1(self):
        code, output = self._run(["experiments", "table1"])
        assert code == 0
        assert "CONFORMS" in output
