"""Tests for globals protection and the fault-diagnosis report path."""

import pytest

from repro.core import RestException
from repro.defenses import AsanDefense, PlainDefense, RestDefense
from repro.defenses.diagnosis import explain_fault
from repro.runtime import Machine
from repro.runtime.shadow import AsanViolation


class TestGlobalsProtection:
    def test_plain_globals_unprotected(self):
        defense = PlainDefense(Machine())
        g = defense.register_global(100)
        defense.store(g + 100, b"overflow")  # silently fine

    def test_asan_global_redzone(self):
        defense = AsanDefense(Machine())
        g = defense.register_global(100)
        defense.store(g, b"in")
        with pytest.raises(AsanViolation):
            defense.load(g + 100, 8)

    def test_rest_global_token_bookend(self):
        defense = RestDefense(Machine())
        g = defense.register_global(100)
        defense.store(g, b"in")
        # The pad up to token alignment absorbs tiny overflows (the
        # documented §V-C granularity effect)...
        defense.load(g + 100, 8)
        # ...but the linear sweep hits the bookend token.
        with pytest.raises(RestException):
            for offset in range(0, 256, 8):
                defense.load(g + 100 + offset, 8)

    def test_globals_do_not_overlap(self):
        defense = RestDefense(Machine())
        a = defense.register_global(64)
        b = defense.register_global(64)
        assert b >= a + 64
        assert len(defense.globals_registered) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PlainDefense(Machine()).register_global(0)


class TestAsanInterceptCompleteness:
    def test_memmove_intercepted(self):
        defense = AsanDefense(Machine())
        src = defense.malloc(64)
        with pytest.raises(AsanViolation):
            defense.memmove(src + 32, src, 128)

    def test_strncpy_intercepted(self):
        defense = AsanDefense(Machine())
        dst = defense.malloc(16)
        src = defense.malloc(64)
        defense.libc.write_cstring(src, b"long string here")
        with pytest.raises(AsanViolation):
            defense.strncpy(dst, src, 64)

    def test_strcat_intercepted(self):
        defense = AsanDefense(Machine())
        dst = defense.malloc(16)
        defense.libc.write_cstring(dst, b"0123456789")
        src = defense.malloc(64)
        defense.libc.write_cstring(src, b"ABCDEFGHIJKLMNOP")
        with pytest.raises(AsanViolation):
            defense.strcat(dst, src)


class TestFaultDiagnosis:
    def test_heap_overflow_diagnosed(self):
        defense = RestDefense(Machine())
        ptr = defense.malloc(100)
        try:
            for offset in range(96, 256, 8):
                defense.load(ptr + offset, 8)
        except RestException as error:
            report = explain_fault(defense, error.address)
            assert "heap" in report and "RIGHT" in report
            assert f"0x{ptr:x}" in report

    def test_underflow_diagnosed(self):
        defense = RestDefense(Machine())
        ptr = defense.malloc(100)
        try:
            defense.load(ptr - 8, 8)
        except RestException as error:
            report = explain_fault(defense, error.address)
            assert "LEFT redzone" in report and "underflow" in report

    def test_uaf_diagnosed(self):
        defense = RestDefense(Machine())
        ptr = defense.malloc(100)
        defense.free(ptr)
        try:
            defense.load(ptr, 8)
        except RestException as error:
            report = explain_fault(defense, error.address)
            assert "FREED" in report and "use-after-free" in report

    def test_stack_overflow_diagnosed(self):
        defense = RestDefense(Machine())
        frame = defense.function_enter([64])
        buffer = frame.buffers[0]
        try:
            for offset in range(56, 256, 8):
                defense.store(buffer.address + offset, b"x" * 8)
        except RestException as error:
            report = explain_fault(defense, error.address)
            assert "stack-buffer-overflow" in report
        finally:
            defense.function_exit(frame)

    def test_sprinkled_decoy_diagnosed(self):
        defense = RestDefense(Machine())
        decoys = defense.sprinkle_tokens(0x40000, 64 * 16, count=1, seed=1)
        report = explain_fault(defense, decoys[0])
        assert "decoy" in report

    def test_wild_pointer_diagnosed(self):
        defense = RestDefense(Machine())
        report = explain_fault(defense, 0xDEAD_0000_0000)
        assert "outside every known region" in report

    def test_live_payload_diagnosed(self):
        defense = RestDefense(Machine())
        ptr = defense.malloc(64)
        report = explain_fault(defense, ptr + 8)
        assert "inside live" in report
