"""Wire-protocol robustness: malformed frames, version skew, disconnects.

The failure-domain contract under test: a protocol violation poisons
exactly one connection.  The daemon answers with a structured error
frame, hangs up on that client, and keeps every job and every other
connection running.  Raw sockets (not :class:`ServiceClient`) are used
deliberately — the point is sending what a well-behaved client never
would.
"""

import asyncio
import json
import shutil
import socket
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.service import ServiceClient, wait_for_daemon
from repro.service.daemon import Daemon, ServiceConfig
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    check_request,
    decode_frame,
    encode_frame,
    error_frame,
    parse_tcp,
    request,
)


@pytest.fixture(autouse=True)
def _fixed_salt(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_SALT", "test-salt")


class TestFrameCodec:
    def test_roundtrip(self):
        frame = request("submit", kind="sweep", params={"seeds": [1]})
        assert decode_frame(encode_frame(frame).rstrip(b"\n")) == frame
        assert frame["v"] == PROTOCOL_VERSION

    @pytest.mark.parametrize(
        "line",
        [
            b"not json at all",
            b'{"truncated": ',
            b'"a bare string"',
            b"[1, 2, 3]",
            b"42",
            b"\xff\xfe garbage bytes",
        ],
    )
    def test_malformed_lines_are_bad_frame(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(line)
        assert excinfo.value.code == "bad_frame"

    def test_oversized_frame_rejected(self):
        huge = b'{"pad": "' + b"a" * MAX_FRAME_BYTES + b'"}'
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(huge)
        assert excinfo.value.code == "bad_frame"

    def test_version_mismatch(self):
        for bad in ({"type": "ping"}, {"v": 99, "type": "ping"},
                    {"v": "1", "type": "ping"}):
            with pytest.raises(ProtocolError) as excinfo:
                check_request(bad)
            assert excinfo.value.code == "version_mismatch"

    def test_unknown_type(self):
        with pytest.raises(ProtocolError) as excinfo:
            check_request({"v": PROTOCOL_VERSION, "type": "frobnicate"})
        assert excinfo.value.code == "unknown_type"

    def test_error_frame_shape(self):
        frame = error_frame("queue_full", "busy", job="j0001")
        assert frame == {
            "type": "error", "code": "queue_full",
            "message": "busy", "job": "j0001",
        }

    def test_parse_tcp(self):
        assert parse_tcp("127.0.0.1:9999") == ("127.0.0.1", 9999)
        with pytest.raises(ValueError):
            parse_tcp("no-port")
        with pytest.raises(ValueError):
            parse_tcp("host:notanumber")


@contextmanager
def running_daemon(**overrides):
    state_dir = tempfile.mkdtemp(prefix="svcp", dir="/tmp")
    config = ServiceConfig(state_dir=state_dir, **overrides)
    daemon = Daemon(config)
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.run()), daemon=True
    )
    thread.start()
    socket_path = str(config.resolved_socket())
    wait_for_daemon(socket_path=socket_path)
    try:
        yield daemon, socket_path
    finally:
        daemon.stop_threadsafe()
        thread.join(timeout=60)
        assert not thread.is_alive(), "daemon failed to drain"
        shutil.rmtree(state_dir, ignore_errors=True)


def raw_exchange(socket_path, payload: bytes):
    """Send raw bytes, return every line the daemon answers with."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(socket_path)
    try:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)  # we are done talking; EOF the daemon
        reader = sock.makefile("rb")
        return [json.loads(line) for line in reader]
    finally:
        sock.close()


class TestDaemonProtocolRobustness:
    def test_garbage_line_errors_and_closes_connection(self):
        with running_daemon() as (daemon, socket_path):
            replies = raw_exchange(socket_path, b"utter garbage\n")
            assert len(replies) == 1
            assert replies[0]["code"] == "bad_frame"
            # The daemon still serves a fresh, well-behaved connection.
            with ServiceClient(socket_path=socket_path) as client:
                assert client.ping()["type"] == "pong"

    def test_version_mismatch_over_the_wire(self):
        with running_daemon() as (daemon, socket_path):
            replies = raw_exchange(
                socket_path, b'{"v": 99, "type": "ping"}\n'
            )
            assert replies[0]["code"] == "version_mismatch"

    def test_unknown_type_over_the_wire(self):
        with running_daemon() as (daemon, socket_path):
            replies = raw_exchange(
                socket_path,
                encode_frame({"v": PROTOCOL_VERSION, "type": "mystery"}),
            )
            assert replies[0]["code"] == "unknown_type"

    def test_truncated_frame_then_eof_is_harmless(self):
        with running_daemon() as (daemon, socket_path):
            # Half a frame, no newline, then hang up mid-frame.  asyncio's
            # readline hands the daemon the partial bytes at EOF, so the
            # daemon reports them as one bad frame rather than crashing.
            replies = raw_exchange(socket_path, b'{"v": 1, "type": "pi')
            assert replies == [] or replies[0]["code"] == "bad_frame"
            with ServiceClient(socket_path=socket_path) as client:
                assert client.ping()["type"] == "pong"

    def test_oversized_line_is_bad_frame(self):
        with running_daemon() as (daemon, socket_path):
            blob = b'{"v": 1, "pad": "' + b"a" * (MAX_FRAME_BYTES + 4096)
            replies = raw_exchange(socket_path, blob + b'"}\n')
            assert replies[0]["code"] == "bad_frame"
            with ServiceClient(socket_path=socket_path) as client:
                assert client.ping()["type"] == "pong"

    def test_midstream_watch_disconnect_poisons_only_that_client(self):
        """A watcher that vanishes mid-stream must not take the job or
        other connections with it."""
        with running_daemon(slots=2) as (daemon, socket_path):
            with ServiceClient(socket_path=socket_path) as client:
                job = client.submit(
                    "sweep",
                    {
                        "benchmarks": ["bzip2"],
                        "specs": ["Secure Heap"],
                        "seeds": [1],
                        "scale": 0.05,
                        "sample_interval": 500,
                    },
                )
                # Watcher connects, reads one frame, then disappears.
                rude = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                rude.settimeout(10.0)
                rude.connect(socket_path)
                rude.sendall(encode_frame(request("watch", job=job["id"])))
                assert rude.recv(4096)  # at least the replayed queue event
                rude.close()

                final = client.wait(job["id"])
                assert final["state"] == "done"
                # A later watcher still gets the full (replayed) stream.
                events = list(client.watch(job["id"]))
                kinds = {event.get("kind") for event in events}
                assert "job.done" in kinds
                assert events[-1]["type"] == "done"

    def test_unknown_job_is_structured_not_fatal(self):
        with running_daemon() as (daemon, socket_path):
            replies = raw_exchange(
                socket_path, encode_frame(request("status", job="j9999"))
            )
            assert replies[0]["code"] == "unknown_job"
            replies = raw_exchange(
                socket_path, encode_frame(request("watch", job="j9999"))
            )
            assert replies[0]["code"] == "unknown_job"

    def test_submit_with_wrong_field_types_is_bad_params(self):
        with running_daemon() as (daemon, socket_path):
            frame = request("submit", kind=42, params=[])
            replies = raw_exchange(socket_path, encode_frame(frame))
            assert replies[0]["code"] == "bad_params"
            frame = request(
                "submit", kind="sweep", params={"seeds": "not-a-list"}
            )
            replies = raw_exchange(socket_path, encode_frame(frame))
            assert replies[0]["code"] == "bad_params"

    def test_tcp_endpoint_speaks_the_same_protocol(self):
        with running_daemon(tcp=("127.0.0.1", 0)) as (daemon, socket_path):
            port = daemon._tcp_server.sockets[0].getsockname()[1]
            with ServiceClient(tcp=("127.0.0.1", port)) as client:
                pong = client.ping()
            assert pong["type"] == "pong"
            assert pong["v"] == PROTOCOL_VERSION
