"""Contract suite for the defense-plugin registry and the MTE plugin.

Every plugin the registry knows must satisfy the same lifecycle
contract (fresh-machine isolation, functional/trace parity, globals
registration, stable mode naming); the registry itself must reject
unknown modes with actionable suggestions; and the MTE plugin must
reproduce the coverage and overhead relationships the defense-zoo
experiment asserts (sync between REST and ASan on alloc-heavy
workloads, async cheaper than sync but imprecise).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.defenses import (
    DEFENSE_MODES,
    MteDefense,
    canonical_mode,
    get_plugin,
    make_defense,
)
from repro.defenses.plugin import registered_aliases, registered_plugins
from repro.runtime import Machine
from repro.runtime.machine import ExecutionMode
from repro.runtime.mte import MteViolation, TagSequencer

REPO = Path(__file__).resolve().parent.parent


# -- registry contract ------------------------------------------------------


def test_registry_exposes_all_modes():
    assert DEFENSE_MODES == (
        "none", "asan", "rest", "rest-heap", "softrest",
        "mte", "mte-async", "mte-asymm",
    )
    assert set(registered_aliases()) == {"plain", "mte-sync"}


def test_canonical_mode_resolves_aliases():
    assert canonical_mode("plain") == "none"
    assert canonical_mode("mte-sync") == "mte"
    for mode in DEFENSE_MODES:
        assert canonical_mode(mode) == mode


def test_unknown_mode_error_carries_suggestions():
    with pytest.raises(ValueError) as excinfo:
        canonical_mode("mte-asycn")
    message = str(excinfo.value)
    assert "unknown defense mode 'mte-asycn'" in message
    assert "did you mean" in message
    assert "mte-async" in message
    assert "aliases: mte-sync, plain" in message


def test_make_defense_rejects_unknown_mode():
    with pytest.raises(ValueError):
        make_defense("restt")


def test_cli_attack_unknown_defense_exits_2():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "attack", "all",
         "--defense", "mte-asycn"],
        capture_output=True, text=True,
        cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 2
    assert "did you mean" in proc.stdout
    assert "mte-async" in proc.stdout


# -- per-plugin lifecycle contract ------------------------------------------


@pytest.mark.parametrize("mode", DEFENSE_MODES)
def test_plugin_builds_on_fresh_machine(mode):
    plugin = get_plugin(mode)
    defense = plugin.build(Machine())
    # describe() is the stable harness-facing mode name ("rest-heap"
    # reports "rest": same mechanism, narrower scope).
    assert defense.describe() == plugin.build(Machine()).describe()
    assert defense.describe()
    assert isinstance(defense.capabilities, frozenset)
    # Two builds never share machine state: a malloc in one is
    # invisible to the other.
    other = plugin.build(Machine())
    ptr = defense.malloc(64)
    defense.store(ptr, b"x" * 8)
    assert other.machine is not defense.machine


@pytest.mark.parametrize("mode", DEFENSE_MODES)
def test_plugin_functional_trace_parity(mode):
    """The same program runs in both execution modes: functional mode
    round-trips data, trace mode emits micro-ops without faulting."""
    defense = make_defense(mode, machine=Machine())
    ptr = defense.malloc(100)
    defense.store(ptr, b"in bounds")
    assert defense.load(ptr, 9) == b"in bounds"
    defense.free(ptr)

    # softrest lowers arm/disarm to store sequences and insists the
    # trace machine was built for that (same rule as make_trace_machine).
    machine = Machine(
        mode=ExecutionMode.TRACE, software_rest=(mode == "softrest")
    )
    defense = make_defense(mode, machine=machine)
    ptr = defense.malloc(100)
    defense.store(ptr, b"in bounds")
    defense.load(ptr, 9)
    defense.free(ptr)
    assert machine.take_trace(), "trace mode must emit micro-ops"


@pytest.mark.parametrize("mode", DEFENSE_MODES)
def test_plugin_globals_registration(mode):
    defense = make_defense(mode)
    address = defense.register_global(128)
    assert (address, 128) in defense.globals_registered


def test_plugin_metadata_complete():
    plugins = registered_plugins()
    assert tuple(p.name for p in plugins) == DEFENSE_MODES
    for plugin in plugins:
        assert plugin.description
        assert plugin.detector
        assert isinstance(plugin.requires_recompilation, bool)


# -- MTE behaviour ----------------------------------------------------------


def test_mte_sync_detects_overflow_precisely():
    defense = make_defense("mte")
    ptr = defense.malloc(32)
    with pytest.raises(MteViolation) as excinfo:
        defense.load(ptr + 48, 8)
    assert excinfo.value.precise


def test_mte_async_defers_to_checkpoint():
    defense = make_defense("mte-async")
    ptr = defense.malloc(32)
    defense.store(ptr + 48, b"\x41" * 8)  # no fault yet
    pending = defense.take_pending_fault()
    assert pending is not None and not pending.precise
    # Once drained, a checkpoint flush is clean.
    defense.flush_pending_faults()


def test_mte_asymm_loads_sync_stores_async():
    defense = make_defense("mte-asymm")
    ptr = defense.malloc(32)
    defense.store(ptr + 48, b"\x41" * 8)  # store: deferred
    assert defense.take_pending_fault() is not None
    with pytest.raises(MteViolation):
        defense.load(ptr + 48, 8)  # load: synchronous


def test_mte_use_after_free_retags():
    defense = make_defense("mte")
    ptr = defense.malloc(64)
    defense.store(ptr, b"live")
    defense.free(ptr)
    with pytest.raises(MteViolation):
        defense.load(ptr, 4)


def test_mte_double_free_caught_by_allocator_check():
    defense = make_defense("mte-async")  # software check is sync even here
    ptr = defense.malloc(64)
    defense.free(ptr)
    with pytest.raises(MteViolation):
        defense.free(ptr)


def test_mte_sub_granule_overflow_missed():
    """Intra-granule overflows share the allocation's tag: missed."""
    defense = make_defense("mte")
    ptr = defense.malloc(10)  # granule rounds to 16
    defense.store(ptr + 12, b"\x41")  # inside the tagged granule
    assert defense.load(ptr + 12, 1) == b"\x41"


def test_mte_tag_sequencer_replay_matches_draws():
    seq = TagSequencer(1234)
    drawn = [seq.draw() for _ in range(8)]
    assert drawn == TagSequencer.replay_tags(8, 1234)
    assert all(1 <= t <= 15 for t in drawn)


def test_mte_trace_mode_emits_tag_fetches():
    machine = Machine(mode=ExecutionMode.TRACE)
    defense = MteDefense(machine)
    ptr = defense.malloc(64)
    defense.load(ptr, 8)
    trace = machine.take_trace()
    assert trace, "trace mode must emit micro-ops"


# -- zoo-level relationships (asserted from committed artifacts) ------------


def _golden():
    path = REPO / "results" / "foundry_matrix_golden.json"
    return json.loads(path.read_text())


def test_golden_includes_mte_axes():
    golden = _golden()
    assert "mte" in golden["defenses"]
    assert "mte-async" in golden["defenses"]
    assert golden["mispredictions"] == []


def test_mte_catches_pad_landings_rest_misses():
    """≥1 family where MTE detects cases REST misses (pad landings)."""
    cells = _golden()["cells"]
    pad = cells["pad_landing"]
    assert pad["mte"]["detected"] > pad["rest"]["detected"]
    jump = cells["targeted_jump"]
    assert jump["mte"]["detected"] > jump["rest"]["detected"]


def test_mte_misses_sub_granule_cases():
    cells = _golden()["cells"]
    assert cells["subtoken"]["mte"]["missed"] > 0


def test_mte_async_latency_exceeds_sync():
    latency = _golden()["latency"]
    assert latency["mte-async"]["p90"] > latency["mte"]["p90"]
    assert latency["mte-async"]["mean"] > latency["mte"]["mean"]


# -- defense-zoo experiment --------------------------------------------------


def test_defensezoo_relationships_and_determinism():
    """One small zoo run pins the acceptance relationships: MTE sync
    lands between REST and ASan on alloc-heavy workloads, async costs
    less than sync, and the canonical JSON is byte-stable."""
    from repro.experiments.defensezoo import run, to_json

    payload = run(scale=0.05, seed=1234)
    heavy = payload["overhead"]["alloc_heavy_geomean"]
    assert heavy["REST Secure"] < heavy["MTE Sync"] < heavy["ASan"]
    assert heavy["MTE Async"] < heavy["MTE Sync"]
    assert heavy["MTE Asymm"] < heavy["MTE Sync"]
    assert payload["coverage"]["mispredictions"] == 0

    again = run(scale=0.05, seed=1234)
    assert to_json(again) == to_json(payload)
