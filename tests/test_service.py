"""Simulation job service: identity, dedup, admission, drain, liveness.

Each test runs a real daemon (asyncio, in a thread) against a real
worker pool and talks to it over its Unix socket — the same path the
CLI verbs use.  Socket paths come from a short ``/tmp`` tempdir because
``AF_UNIX`` paths are capped at ~108 bytes.
"""

import asyncio
import json
import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.experiments.run_all import run_all
from repro.faults.plan import ALWAYS, FaultPlan, FaultSpec
from repro.harness.parallel import strip_volatile
from repro.service import ServiceClient, ServiceError, wait_for_daemon
from repro.service.daemon import Daemon, ServiceConfig
from repro.service.scheduler import QUEUE_FILE


@pytest.fixture(autouse=True)
def _fixed_salt(monkeypatch):
    """Pin the cache salt (propagates to forked workers via the env)."""
    monkeypatch.setenv("REPRO_CACHE_SALT", "test-salt")


@contextmanager
def running_daemon(state_dir=None, **overrides):
    """A live daemon on a short Unix-socket path; drains on exit."""
    own_dir = state_dir is None
    if own_dir:
        state_dir = tempfile.mkdtemp(prefix="svc", dir="/tmp")
    config = ServiceConfig(state_dir=str(state_dir), **overrides)
    daemon = Daemon(config)
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.run()), daemon=True
    )
    thread.start()
    socket_path = str(config.resolved_socket())
    wait_for_daemon(socket_path=socket_path)
    try:
        yield daemon, socket_path, Path(state_dir)
    finally:
        daemon.stop_threadsafe()
        thread.join(timeout=60)
        assert not thread.is_alive(), "daemon failed to drain"
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)


SWEEP_PARAMS = {
    "benchmarks": ["bzip2"],
    "specs": ["Secure Heap"],
    "seeds": [1],
    "scale": 0.05,
}


class TestEndToEndIdentity:
    def test_run_all_job_matches_direct_run(self, tmp_path):
        """The tentpole's core contract: a job through the daemon writes
        a manifest strip_volatile-identical to a direct run_all."""
        direct = tmp_path / "direct"
        run_all(
            str(direct), scale=0.2, seed=99, jobs=1,
            use_cache=False, quiet=True, names=["table1", "table2"],
        )
        with running_daemon(slots=2) as (daemon, socket_path, state):
            with ServiceClient(socket_path=socket_path) as client:
                job = client.submit(
                    "run_all",
                    {"names": ["table1", "table2"],
                     "scale": 0.2, "seed": 99},
                )
                final = client.wait(job["id"])
            assert final["state"] == "done"
            service_manifest = json.loads(
                (Path(final["outdir"]) / "manifest.json").read_text()
            )
            direct_manifest = json.loads(
                (direct / "manifest.json").read_text()
            )
            assert strip_volatile(service_manifest) == strip_volatile(
                direct_manifest
            )
            # The artifact files themselves are byte-identical too.
            for name in ("table1.txt", "table2.txt"):
                assert (Path(final["outdir"]) / name).read_bytes() == (
                    direct / name
                ).read_bytes()

    def test_sweep_job_reports_per_spec_statistics(self):
        with running_daemon(slots=2) as (daemon, socket_path, state):
            with ServiceClient(socket_path=socket_path) as client:
                job = client.submit("sweep", dict(SWEEP_PARAMS))
                final = client.wait(job["id"])
        assert final["state"] == "done"
        stats = final["result"]["specs"]["Secure Heap"]
        assert stats["samples"] and stats["mean"] == pytest.approx(
            stats["mean"]
        )


class TestSingleFlightDedup:
    def test_concurrent_duplicate_submissions_execute_once(self):
        """N clients submitting the same content → one execution per
        unique unit key, everyone gets the result."""
        clients = 4
        with running_daemon(slots=2) as (daemon, socket_path, state):
            results = [None] * clients
            errors = []

            def submit_and_wait(slot):
                try:
                    with ServiceClient(socket_path=socket_path) as client:
                        job = client.submit("sweep", dict(SWEEP_PARAMS))
                        results[slot] = client.wait(job["id"])
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=submit_and_wait, args=(slot,))
                for slot in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            # 2 unique units (Plain + Secure Heap), 4 duplicate jobs.
            assert daemon.scheduler.executions_started == 2
            shared = sum(job["dedup_hits"] for job in results)
            cached = sum(
                job["units"].get("cached", 0) for job in results
            )
            # Every duplicate unit was served by attach or by cache.
            assert shared + cached == 2 * (clients - 1)
        states = {job["state"] for job in results}
        assert states == {"done"}
        values = {
            json.dumps(job["result"], sort_keys=True) for job in results
        }
        assert len(values) == 1


class TestAdmissionControl:
    def test_queue_overflow_is_structured_rejection(self):
        with running_daemon(slots=1, max_jobs=1) as (
            daemon, socket_path, state,
        ):
            with ServiceClient(socket_path=socket_path) as client:
                first = client.submit("sweep", dict(SWEEP_PARAMS))
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(
                        "sweep", {**SWEEP_PARAMS, "seeds": [2]}
                    )
                assert excinfo.value.code == "queue_full"
                # The daemon is fine: finish the first job, then the
                # previously rejected submission is admitted.
                client.wait(first["id"])
                second = client.submit(
                    "sweep", {**SWEEP_PARAMS, "seeds": [2]}
                )
                assert client.wait(second["id"])["state"] == "done"

    def test_bad_params_rejected_at_admission(self):
        with running_daemon() as (daemon, socket_path, state):
            with ServiceClient(socket_path=socket_path) as client:
                for kind, params, hint in (
                    ("run_all", {"names": ["nope"]}, "unknown experiment"),
                    ("sweep", {"specs": ["nope"]}, "unknown spec"),
                    ("sweep", {"seeds": [1, 1]}, "unique"),
                    ("nope", {}, "unknown job kind"),
                ):
                    with pytest.raises(ServiceError) as excinfo:
                        client.submit(kind, params)
                    assert excinfo.value.code == "bad_params"
                    assert hint in str(excinfo.value)
                assert daemon.scheduler.jobs == {}


class TestLiveProgress:
    def test_watch_streams_samples_while_job_runs(self):
        """`repro watch` is live telemetry: the first sampler snapshot
        arrives before the job finishes, not as a post-hoc replay."""
        with running_daemon(slots=2) as (daemon, socket_path, state):
            with ServiceClient(socket_path=socket_path) as client:
                job = client.submit(
                    "sweep",
                    {**SWEEP_PARAMS, "sample_interval": 500},
                )
                first_sample_at = None
                samples = 0
                kinds = set()
                for event in client.watch(job["id"]):
                    if event.get("type") == "done":
                        break
                    kinds.add(event.get("kind"))
                    if event.get("kind") == "sample":
                        samples += 1
                        if first_sample_at is None:
                            first_sample_at = time.time()
                final = client.status(job["id"])
        assert final["state"] == "done"
        assert samples >= 1
        assert first_sample_at is not None
        assert first_sample_at < final["finished"], (
            "sampler snapshots must stream during execution, not after"
        )
        assert {"job.queued", "unit.started", "unit.done", "job.done"} <= kinds

    def test_sample_events_carry_cell_identity_and_counters(self):
        with running_daemon() as (daemon, socket_path, state):
            with ServiceClient(socket_path=socket_path) as client:
                job = client.submit(
                    "sweep", {**SWEEP_PARAMS, "sample_interval": 500}
                )
                sample = None
                for event in client.watch(job["id"]):
                    if sample is None and event.get("kind") == "sample":
                        sample = event
        assert sample is not None
        assert sample["uid"].startswith("bzip2/")
        assert sample["cycle"] > 0 and "ipc" in sample


class TestPriorityScheduling:
    def test_high_priority_overtakes_queued_low(self):
        with running_daemon(slots=1) as (daemon, socket_path, state):
            with ServiceClient(socket_path=socket_path) as client:
                low = client.submit(
                    "sweep",
                    {**SWEEP_PARAMS, "seeds": [1, 2]},
                    priority="low",
                )
                high = client.submit(
                    "sweep",
                    {
                        "benchmarks": ["sjeng"],
                        "specs": ["Secure Heap"],
                        "seeds": [3],
                        "scale": 0.05,
                    },
                    priority="high",
                )
                high_final = client.wait(high["id"])
                low_final = client.wait(low["id"])
        assert high_final["state"] == "done"
        assert low_final["state"] == "done"
        assert high_final["finished"] < low_final["finished"]


class TestFaultedJobs:
    def test_injected_crash_quarantines_and_fails_sweep_job(
        self, tmp_path, monkeypatch
    ):
        """PR4's resilience layer applies per job: an always-crashing
        cell retries, quarantines, and fails only its own job."""
        uid = "bzip2/Secure Heap/1"
        plan = FaultPlan(seed=1)
        plan.faults[uid] = FaultSpec(kind="crash", fail_attempts=ALWAYS)
        plan_path = plan.write(tmp_path / "plan.json")
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(plan_path))
        with running_daemon(retries=1, backoff=0.05) as (
            daemon, socket_path, state,
        ):
            with ServiceClient(socket_path=socket_path) as client:
                job = client.submit("sweep", dict(SWEEP_PARAMS))
                kinds = []
                for event in client.watch(job["id"]):
                    if event.get("type") == "done":
                        break
                    kinds.append(event.get("kind"))
                final = client.status(job["id"])
                # The daemon survives and still serves other jobs.
                monkeypatch.delenv("REPRO_FAULT_PLAN")
                healthy = client.submit(
                    "sweep", {**SWEEP_PARAMS, "seeds": [2]}
                )
                assert client.wait(healthy["id"])["state"] == "done"
        assert final["state"] == "failed"
        assert final["error"]["type"] == "SweepError"
        assert uid in final["error"]["message"]
        assert "fault.crash" in kinds
        assert "fault.retry" in kinds
        assert "fault.quarantine" in kinds

    def test_run_all_job_degrades_like_direct_cli(self, monkeypatch):
        """run_all jobs mirror CLI semantics: a failed experiment lands
        as a structured manifest error, the job still completes."""
        from repro.experiments import run_all as driver

        monkeypatch.setattr(
            driver,
            "EXPERIMENT_SCALES",
            {"table1": None, "_selftest": None},
        )
        monkeypatch.setenv("REPRO_SELFTEST_BOOM", "1")
        with running_daemon() as (daemon, socket_path, state):
            with ServiceClient(socket_path=socket_path) as client:
                job = client.submit("run_all", {"scale": 0.2})
                final = client.wait(job["id"])
        assert final["state"] == "done"  # degraded, not failed
        assert final["failures"] == 1
        manifest = final["result"]["manifest"]
        assert manifest["experiments"]["_selftest"]["status"] == "error"
        assert manifest["experiments"]["table1"]["status"] == "ok"
        assert "_selftest" in manifest["quarantine"]


class TestDrainAndRestart:
    def test_sigterm_drain_persists_queue_and_restart_resumes(self):
        state_dir = tempfile.mkdtemp(prefix="svc", dir="/tmp")
        try:
            params = {
                "benchmarks": ["bzip2", "sjeng"],
                "specs": ["Secure Heap"],
                "seeds": [1, 2],
                "scale": 0.3,
            }
            with running_daemon(state_dir=state_dir, slots=2) as (
                daemon, socket_path, state,
            ):
                with ServiceClient(socket_path=socket_path) as client:
                    # Drain immediately: the two in-flight units finish
                    # inside the grace period (and land in the cache);
                    # the queued rest must persist.
                    job = client.submit("sweep", params)
                    job_id = job["id"]
            # Drained: the open job is persisted, the socket is gone.
            queue_file = Path(state_dir) / QUEUE_FILE
            assert queue_file.exists()
            persisted = json.loads(queue_file.read_text())
            assert [record["id"] for record in persisted["jobs"]] == [job_id]
            assert not Path(socket_path).exists()

            with running_daemon(state_dir=state_dir, slots=2) as (
                daemon2, socket_path2, state2,
            ):
                with ServiceClient(socket_path=socket_path2) as client:
                    listing = client.jobs()
                    assert [job["id"] for job in listing] == [job_id]
                    final = client.wait(job_id, poll=0.3)
            assert final["state"] == "done"
            assert final["result"]["specs"]["Secure Heap"]["samples"]
            # Zero completed units were lost: whatever finished under
            # daemon #1 came back as cache hits, not re-executions.
            total_units = final["units"]["total"]
            assert total_units == 8
            executed = daemon2.scheduler.executions_started
            cached = final["units"].get("cached", 0)
            assert executed + cached == total_units
            assert cached >= 1, "drain must preserve completed units"
            # The restored job completed, so daemon #2's own drain
            # persisted an empty queue.
            assert json.loads(queue_file.read_text())["jobs"] == []
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)

    def test_draining_daemon_rejects_submissions(self):
        with running_daemon() as (daemon, socket_path, state):
            daemon.scheduler.draining = True
            with ServiceClient(socket_path=socket_path) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.submit("sweep", dict(SWEEP_PARAMS))
                assert excinfo.value.code == "draining"
            daemon.scheduler.draining = False
