"""Property tests for the ResultCache exclusive-create write path.

Two writer processes hammer the same key while the parent reads the
entry file continuously.  The exclusive-create protocol (full write to
an ``O_EXCL`` temp file, publication via hard link) must guarantee:

* a reader never observes partial JSON, no matter how the writers
  interleave;
* exactly one writer wins the initial publish — every later ``put``
  on the key counts as a lost race and leaves the entry untouched;
* a torn or mismatched entry on disk is healed (atomically replaced)
  by the next writer instead of being trusted or crashing it.
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.harness.parallel import ResultCache, WorkUnit

UNIT = WorkUnit(
    uid="bzip2/Secure Heap/1",
    module="repro.harness.sweeps",
    func="run_cell",
    kwargs={"seed": 1},
    key_payload={"benchmark": "bzip2", "spec": "Secure Heap", "seed": 1},
)
KEY = "deadbeef" * 8  # fixed key: the test is about write races, not hashing
VALUE = {"ipc": 0.61, "cycles": 123456}
PUTS_PER_WRITER = 40


def _hammer(root, barrier, counts):
    cache = ResultCache(root)
    barrier.wait()
    for _ in range(PUTS_PER_WRITER):
        cache.put(KEY, UNIT, VALUE)
    counts.put({"races": cache.races, "stores": cache.stores})


class TestTwoProcessWriteRace:
    def test_one_winner_no_torn_reads(self, tmp_path):
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(3)
        counts = context.Queue()
        writers = [
            context.Process(
                target=_hammer, args=(tmp_path, barrier, counts), daemon=True
            )
            for _ in range(2)
        ]
        for proc in writers:
            proc.start()

        entry_path = ResultCache(tmp_path)._path(KEY)
        barrier.wait()  # release the writers, then read through the storm
        observed = 0
        while any(proc.is_alive() for proc in writers):
            try:
                raw = entry_path.read_text()
            except FileNotFoundError:
                continue  # before the first publish
            # The crux: whatever instant we read at, the entry is whole.
            entry = json.loads(raw)
            assert entry["uid"] == UNIT.uid
            assert entry["payload"] == UNIT.key_payload
            assert entry["value"] == VALUE
            observed += 1
        for proc in writers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        assert observed > 0, "reader never saw the published entry"

        totals = [counts.get(timeout=10) for _ in writers]
        races = sum(total["races"] for total in totals)
        stores = sum(total["stores"] for total in totals)
        assert stores == 2 * PUTS_PER_WRITER
        # Exactly one put linked the entry into place; every other one
        # lost the race and left the winner's bytes alone.
        assert races == 2 * PUTS_PER_WRITER - 1

        # The survivor round-trips through the read path.
        cache = ResultCache(tmp_path)
        entry = cache.get(KEY, UNIT)
        assert entry is not None and entry["value"] == VALUE
        assert cache.hits == 1

    def test_no_stray_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        for _ in range(5):
            cache.put(KEY, UNIT, VALUE)
        leftovers = [
            name
            for name in os.listdir(ResultCache(tmp_path)._path(KEY).parent)
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestCorruptionHealing:
    def test_torn_entry_is_replaced_not_trusted(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"uid": "bzip2/Secure Heap/1", "val')  # torn write
        assert cache.get(KEY, UNIT) is None  # torn entry reads as a miss
        cache.put(KEY, UNIT, VALUE)
        assert cache.races == 0  # healing is not a lost race
        entry = cache.get(KEY, UNIT)
        assert entry is not None and entry["value"] == VALUE

    def test_mismatched_entry_is_replaced(self, tmp_path):
        cache = ResultCache(tmp_path)
        other = WorkUnit(
            uid="sjeng/Plain/2",
            module=UNIT.module,
            func=UNIT.func,
            key_payload={"benchmark": "sjeng", "spec": "Plain", "seed": 2},
        )
        cache.put(KEY, other, {"ipc": 9.99})
        # A colliding put for a *different* computation must not be
        # served to this unit, and the writer replaces it outright.
        assert cache.get(KEY, UNIT) is None
        assert cache.mismatches == 1
        cache.put(KEY, UNIT, VALUE)
        assert cache.get(KEY, UNIT)["value"] == VALUE
