"""Property tests for the ResultCache exclusive-create write path.

Two writer processes hammer the same key while the parent reads the
entry file continuously.  The exclusive-create protocol (full write to
an ``O_EXCL`` temp file, publication via hard link) must guarantee:

* a reader never observes partial JSON, no matter how the writers
  interleave;
* exactly one writer wins the initial publish — every later ``put``
  on the key counts as a lost race and leaves the entry untouched;
* a torn or mismatched entry on disk is healed (atomically replaced)
  by the next writer instead of being trusted or crashing it.
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.harness.parallel import ResultCache, WorkUnit

UNIT = WorkUnit(
    uid="bzip2/Secure Heap/1",
    module="repro.harness.sweeps",
    func="run_cell",
    kwargs={"seed": 1},
    key_payload={"benchmark": "bzip2", "spec": "Secure Heap", "seed": 1},
)
KEY = "deadbeef" * 8  # fixed key: the test is about write races, not hashing
VALUE = {"ipc": 0.61, "cycles": 123456}
PUTS_PER_WRITER = 40


def _hammer(root, barrier, counts):
    cache = ResultCache(root)
    barrier.wait()
    for _ in range(PUTS_PER_WRITER):
        cache.put(KEY, UNIT, VALUE)
    counts.put({"races": cache.races, "stores": cache.stores})


class TestTwoProcessWriteRace:
    def test_one_winner_no_torn_reads(self, tmp_path):
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(3)
        counts = context.Queue()
        writers = [
            context.Process(
                target=_hammer, args=(tmp_path, barrier, counts), daemon=True
            )
            for _ in range(2)
        ]
        for proc in writers:
            proc.start()

        entry_path = ResultCache(tmp_path)._path(KEY)
        barrier.wait()  # release the writers, then read through the storm
        observed = 0
        while any(proc.is_alive() for proc in writers):
            try:
                raw = entry_path.read_text()
            except FileNotFoundError:
                continue  # before the first publish
            # The crux: whatever instant we read at, the entry is whole.
            entry = json.loads(raw)
            assert entry["uid"] == UNIT.uid
            assert entry["payload"] == UNIT.key_payload
            assert entry["value"] == VALUE
            observed += 1
        for proc in writers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        assert observed > 0, "reader never saw the published entry"

        totals = [counts.get(timeout=10) for _ in writers]
        races = sum(total["races"] for total in totals)
        stores = sum(total["stores"] for total in totals)
        assert stores == 2 * PUTS_PER_WRITER
        # Exactly one put linked the entry into place; every other one
        # lost the race and left the winner's bytes alone.
        assert races == 2 * PUTS_PER_WRITER - 1

        # The survivor round-trips through the read path.
        cache = ResultCache(tmp_path)
        entry = cache.get(KEY, UNIT)
        assert entry is not None and entry["value"] == VALUE
        assert cache.hits == 1

    def test_no_stray_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        for _ in range(5):
            cache.put(KEY, UNIT, VALUE)
        leftovers = [
            name
            for name in os.listdir(ResultCache(tmp_path)._path(KEY).parent)
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestCorruptionHealing:
    def test_torn_entry_is_replaced_not_trusted(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"uid": "bzip2/Secure Heap/1", "val')  # torn write
        assert cache.get(KEY, UNIT) is None  # torn entry reads as a miss
        cache.put(KEY, UNIT, VALUE)
        assert cache.races == 0  # healing is not a lost race
        entry = cache.get(KEY, UNIT)
        assert entry is not None and entry["value"] == VALUE

    def test_mismatched_entry_is_replaced(self, tmp_path):
        cache = ResultCache(tmp_path)
        other = WorkUnit(
            uid="sjeng/Plain/2",
            module=UNIT.module,
            func=UNIT.func,
            key_payload={"benchmark": "sjeng", "spec": "Plain", "seed": 2},
        )
        cache.put(KEY, other, {"ipc": 9.99})
        # A colliding put for a *different* computation must not be
        # served to this unit, and the writer replaces it outright.
        assert cache.get(KEY, UNIT) is None
        assert cache.mismatches == 1
        cache.put(KEY, UNIT, VALUE)
        assert cache.get(KEY, UNIT)["value"] == VALUE


def _key(index):
    return f"{index:02d}" + "ab" * 31


class TestGenerations:
    def test_generation_starts_at_zero_and_bumps_atomically(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.generation == 0
        assert cache.bump_generation() == 1
        assert cache.bump_generation() == 2
        # Another handle on the same root sees the published value.
        assert ResultCache(tmp_path).generation == 2
        stray = [
            name for name in os.listdir(tmp_path)
            if name.startswith(".generation.")
        ]
        assert stray == [], "generation bump must not leak temp files"

    def test_entries_are_stamped_with_current_generation(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key(0), UNIT, VALUE)
        cache.bump_generation()
        cache.put(_key(1), UNIT, VALUE)
        first = json.loads(cache._path(_key(0)).read_text())
        second = json.loads(cache._path(_key(1)).read_text())
        assert first["gen"] == 0
        assert second["gen"] == 1

    def test_gc_drops_only_older_generations(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key(0), UNIT, VALUE)
        cache.bump_generation()
        cache.put(_key(1), UNIT, VALUE)
        removed = cache.gc(min_generation=1)
        assert removed == 1
        assert cache.get(_key(0), UNIT) is None
        assert cache.get(_key(1), UNIT)["value"] == VALUE
        # Unstamped legacy entries count as generation 0.
        path = cache._path(_key(2))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {"uid": UNIT.uid, "payload": UNIT.key_payload, "value": VALUE}
        ))
        assert cache.gc(min_generation=1) == 1
        assert cache.evicted == 2

    def test_evict_keeps_newest_generations_deterministically(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path)
        for index in range(3):
            cache.put(_key(index), UNIT, VALUE)
        cache.bump_generation()
        for index in range(3, 5):
            cache.put(_key(index), UNIT, VALUE)
        assert cache.evict(max_entries=3) == 2
        survivors = {
            path.name for path, entry in cache._entries()
            if entry is not None
        }
        # Oldest generation goes first, key order breaks ties: the two
        # gen-1 entries survive plus the highest-sorting gen-0 key.
        assert survivors == {
            f"{_key(2)}.json", f"{_key(3)}.json", f"{_key(4)}.json"
        }
        # Idempotent: a second evictor converges on the same survivors.
        assert cache.evict(max_entries=3) == 0


class TestHealing:
    def test_heal_removes_torn_entries_and_stray_temps(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key(0), UNIT, VALUE)
        torn = cache._path(_key(1))
        torn.parent.mkdir(parents=True, exist_ok=True)
        torn.write_text('{"uid": "x", "val')
        stray = torn.parent / (torn.name + ".123.tmp")
        stray.write_text("half-written")
        # Crashed-writer debris is old; fresh temps are live publishes
        # and must be left alone, so age this one past the grace window.
        os.utime(stray, (0, 0))
        wrong_shape = cache._path(_key(2))
        wrong_shape.parent.mkdir(parents=True, exist_ok=True)
        wrong_shape.write_text('"just a string"')
        fresh = torn.parent / (torn.name + ".456.tmp")
        fresh.write_text("publish in flight")
        healed = cache.heal()
        assert healed == 3
        assert fresh.exists(), "live publishes must not be reaped"
        fresh.unlink()
        assert cache.healed == 3
        assert cache.get(_key(0), UNIT)["value"] == VALUE
        assert not torn.exists() and not stray.exists()
        assert not wrong_shape.exists()

    def test_heal_is_safe_under_concurrent_writers(self, tmp_path):
        """Healers racing writers on the same root: valid entries are
        never removed, and the store ends fully healed."""
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(3)

        def write_storm(root, barrier):
            cache = ResultCache(root)
            barrier.wait()
            for round_number in range(30):
                cache.put(_key(round_number % 8), UNIT, VALUE)

        def heal_storm(root, barrier):
            cache = ResultCache(root)
            barrier.wait()
            for _ in range(30):
                cache.heal()

        seed_cache = ResultCache(tmp_path)
        torn = seed_cache._path(_key(9))
        torn.parent.mkdir(parents=True, exist_ok=True)
        torn.write_text('{"torn":')
        workers = [
            context.Process(target=write_storm, args=(tmp_path, barrier),
                            daemon=True),
            context.Process(target=heal_storm, args=(tmp_path, barrier),
                            daemon=True),
        ]
        for proc in workers:
            proc.start()
        barrier.wait()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        final = ResultCache(tmp_path)
        assert final.heal() == 0, "storm must end with a clean store"
        for index in range(8):
            assert final.get(_key(index), UNIT)["value"] == VALUE
        assert not torn.exists()
