"""Tests for the libc routines over the Machine interface."""

import pytest

from repro.cpu import OpType
from repro.runtime import ExecutionMode, Libc, Machine


@pytest.fixture
def env():
    machine = Machine()
    return machine, Libc(machine)


class TestMemFunctions:
    def test_memcpy(self, env):
        machine, libc = env
        machine.store(0x1000, b"hello world!")
        libc.memcpy(0x2000, 0x1000, 12)
        assert machine.load(0x2000, 12) == b"hello world!"

    def test_memcpy_odd_sizes(self, env):
        machine, libc = env
        machine.store(0x1000, bytes(range(37)))
        libc.memcpy(0x2000, 0x1000, 37)
        assert machine.load(0x2000, 37) == bytes(range(37))

    def test_memset(self, env):
        machine, libc = env
        libc.memset(0x3000, 0x5A, 100)
        assert machine.load(0x3000, 100) == b"\x5a" * 100

    def test_memmove_forward_overlap(self, env):
        machine, libc = env
        machine.store(0x1000, b"abcdefgh")
        libc.memmove(0x1002, 0x1000, 8)
        assert machine.load(0x1002, 8) == b"abcdefgh"

    def test_memmove_no_overlap_same_as_memcpy(self, env):
        machine, libc = env
        machine.store(0x1000, b"xyz")
        libc.memmove(0x4000, 0x1000, 3)
        assert machine.load(0x4000, 3) == b"xyz"

    def test_memcmp(self, env):
        machine, libc = env
        machine.store(0x1000, b"aaaa")
        machine.store(0x2000, b"aaab")
        assert libc.memcmp(0x1000, 0x2000, 4) == -1
        assert libc.memcmp(0x2000, 0x1000, 4) == 1
        assert libc.memcmp(0x1000, 0x1000, 4) == 0


class TestStringFunctions:
    def test_strlen(self, env):
        machine, libc = env
        libc.write_cstring(0x1000, b"hello")
        assert libc.strlen(0x1000) == 5

    def test_strcpy(self, env):
        machine, libc = env
        libc.write_cstring(0x1000, b"copy me")
        libc.strcpy(0x2000, 0x1000)
        assert machine.load(0x2000, 8) == b"copy me\x00"

    def test_strncpy_pads_with_zeros(self, env):
        machine, libc = env
        machine.store(0x2000, b"\xff" * 10)
        libc.write_cstring(0x1000, b"ab")
        libc.strncpy(0x2000, 0x1000, 10)
        assert machine.load(0x2000, 10) == b"ab" + b"\x00" * 8

    def test_strcat(self, env):
        machine, libc = env
        libc.write_cstring(0x1000, b"foo")
        libc.write_cstring(0x2000, b"bar")
        libc.strcat(0x1000, 0x2000)
        assert machine.load(0x1000, 7) == b"foobar\x00"

    def test_strlen_requires_functional_mode(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        libc = Libc(machine)
        with pytest.raises(RuntimeError):
            libc.strlen(0x1000)


class TestTraceShape:
    def test_memcpy_emits_load_store_pairs(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        libc = Libc(machine)
        libc.memcpy(0x2000, 0x1000, 64)
        trace = machine.take_trace()
        loads = sum(1 for u in trace if u.op is OpType.LOAD)
        stores = sum(1 for u in trace if u.op is OpType.STORE)
        assert loads == 8 and stores == 8  # 64B word-at-a-time

    def test_store_depends_on_load(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        libc = Libc(machine)
        libc.memcpy(0x2000, 0x1000, 8)
        trace = machine.take_trace()
        assert trace[1].op is OpType.STORE and trace[1].deps == (1,)
