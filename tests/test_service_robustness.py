"""Service robustness satellites: crash-safe queue, resilient watch,
structured bind failures, drain visibility.

These tests cover the failure paths an operator actually hits: a
corrupted ``queue.json`` after a disk incident, a daemon restarting
under a live watcher, two daemons racing for one socket, and a drain
arriving while watch subscribers are mid-stream.
"""

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.harness.persistence import atomic_write_json
from repro.service import ServiceClient, ServiceError, wait_for_daemon
from repro.service.client import watch_resilient
from repro.service.daemon import Daemon, ServiceConfig, StartupError
from repro.service.scheduler import QUEUE_FILE
from tests.test_service import SWEEP_PARAMS, running_daemon


@pytest.fixture(autouse=True)
def _fixed_salt(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_SALT", "robust-test")


def _cli_env():
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestCrashSafeQueue:
    def test_atomic_write_leaves_no_partial_file(self, tmp_path):
        """The write path is temp + fsync + rename: the destination
        either holds the old payload or the new one, never a tear."""
        path = tmp_path / "queue.json"
        atomic_write_json(path, {"jobs": list(range(1000))})
        first = path.read_text()
        atomic_write_json(path, {"jobs": list(range(2000))})
        assert json.loads(path.read_text())["jobs"] == list(range(2000))
        assert json.loads(first)["jobs"] == list(range(1000))
        assert [p.name for p in tmp_path.iterdir()] == ["queue.json"]

    def test_torn_queue_file_is_quarantined_not_fatal(self):
        """A corrupted queue.json must not brick the daemon: it starts
        clean and the evidence survives under queue.json.corrupt."""
        state_dir = tempfile.mkdtemp(prefix="svc", dir="/tmp")
        try:
            torn = Path(state_dir) / QUEUE_FILE
            torn.write_text('{"next_job": 3, "jobs": [{"id": "j00')
            with running_daemon(state_dir=state_dir) as (
                daemon, socket_path, state,
            ):
                with ServiceClient(socket_path=socket_path) as client:
                    assert client.jobs() == []
                    job = client.submit("sweep", dict(SWEEP_PARAMS))
                    assert client.wait(job["id"])["state"] == "done"
            corrupt = Path(state_dir) / (QUEUE_FILE + ".corrupt")
            assert corrupt.exists()
            assert corrupt.read_text().startswith('{"next_job": 3')
        finally:
            import shutil

            shutil.rmtree(state_dir, ignore_errors=True)

    def test_non_dict_queue_payload_also_quarantined(self):
        state_dir = tempfile.mkdtemp(prefix="svc", dir="/tmp")
        try:
            (Path(state_dir) / QUEUE_FILE).write_text('["not", "a", "dict"]')
            with running_daemon(state_dir=state_dir) as (
                daemon, socket_path, state,
            ):
                with ServiceClient(socket_path=socket_path) as client:
                    assert client.jobs() == []
            assert (Path(state_dir) / (QUEUE_FILE + ".corrupt")).exists()
        finally:
            import shutil

            shutil.rmtree(state_dir, ignore_errors=True)


class TestBindFailures:
    def test_socket_in_use_exits_1_with_structured_error(self):
        """A second daemon on a live socket must exit 1 with a JSON
        error on stderr, and must NOT steal the owner's socket."""
        with running_daemon() as (daemon, socket_path, state):
            process = subprocess.run(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--state-dir", str(state), "--socket", socket_path,
                ],
                env=_cli_env(),
                capture_output=True,
                timeout=60,
                text=True,
            )
            assert process.returncode == 1
            error = json.loads(process.stderr.strip().splitlines()[-1])
            assert error["error"] == "socket_in_use"
            assert socket_path in error["message"]
            # The original daemon is untouched.
            with ServiceClient(socket_path=socket_path) as client:
                assert client.ping()["type"] == "pong"

    def test_stale_socket_with_dead_owner_is_reclaimed(self):
        state_dir = tempfile.mkdtemp(prefix="svc", dir="/tmp")
        try:
            # Fake a crashed daemon: a socket file nobody listens on.
            import socket as socket_mod

            stale = Path(state_dir) / "daemon.sock"
            listener = socket_mod.socket(
                socket_mod.AF_UNIX, socket_mod.SOCK_STREAM
            )
            listener.bind(str(stale))
            listener.close()  # file stays, listener is gone
            assert stale.exists()
            with running_daemon(state_dir=state_dir) as (
                daemon, socket_path, state,
            ):
                with ServiceClient(socket_path=socket_path) as client:
                    assert client.ping()["type"] == "pong"
        finally:
            import shutil

            shutil.rmtree(state_dir, ignore_errors=True)

    def test_tcp_port_in_use_is_structured_startup_error(self):
        import asyncio
        import socket as socket_mod

        blocker = socket_mod.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        state_dir = tempfile.mkdtemp(prefix="svc", dir="/tmp")
        try:
            config = ServiceConfig(
                state_dir=state_dir, tcp=("127.0.0.1", port)
            )
            daemon = Daemon(config)
            with pytest.raises(StartupError) as excinfo:
                asyncio.run(daemon.run())
            assert excinfo.value.code == "bind_failed"
            assert str(port) in str(excinfo.value)
            # The unix socket it bound first was rolled back too.
            assert not config.resolved_socket().exists()
        finally:
            blocker.close()
            import shutil

            shutil.rmtree(state_dir, ignore_errors=True)


class TestResilientWatch:
    def test_watch_survives_daemon_restart_with_reconnected_event(self):
        """A watcher outlives a full drain/restart cycle: it sees the
        terminal ``draining`` frame, then a structured ``reconnected``
        frame on the restarted daemon, then the job's ``done``."""
        state_dir = tempfile.mkdtemp(prefix="svc", dir="/tmp")
        frames = []
        errors = []
        try:
            params = {
                "benchmarks": ["bzip2", "sjeng"],
                "specs": ["Secure Heap"],
                "seeds": [1, 2],
                "scale": 0.3,
            }
            with running_daemon(state_dir=state_dir, slots=2) as (
                daemon, socket_path, state,
            ):
                with ServiceClient(socket_path=socket_path) as client:
                    job_id = client.submit("sweep", params)["id"]

                def follow():
                    try:
                        for frame in watch_resilient(
                            job_id,
                            socket_path=socket_path,
                            max_retries=60,
                            backoff=0.05,
                        ):
                            frames.append(frame)
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)

                watcher = threading.Thread(target=follow, daemon=True)
                watcher.start()
                # The drain must catch the watcher mid-stream, so wait
                # until it has demonstrably subscribed (received a
                # frame) before leaving the context.
                deadline = time.time() + 30
                while not frames and time.time() < deadline:
                    time.sleep(0.02)
                assert frames, "watcher never subscribed"
                # Leave the context: the daemon drains under the watcher.
            # Restart; the persisted job resumes under the same id.
            with running_daemon(state_dir=state_dir, slots=2) as (
                daemon2, socket_path2, state2,
            ):
                assert socket_path2 == socket_path
                watcher.join(timeout=120)
            assert not watcher.is_alive()
            assert not errors
            kinds = [frame.get("type") for frame in frames]
            assert "draining" in kinds
            reconnect_at = kinds.index("reconnected")
            assert reconnect_at > kinds.index("draining")
            assert kinds[-1] == "done"
            assert frames[-1]["state"] == "done"
            assert frames[-1]["job"] == job_id
        finally:
            import shutil

            shutil.rmtree(state_dir, ignore_errors=True)

    def test_watch_resilient_gives_up_with_unreachable(self, tmp_path):
        dead_socket = str(tmp_path / "nobody.sock")
        with pytest.raises(ServiceError) as excinfo:
            list(
                watch_resilient(
                    "j0001",
                    socket_path=dead_socket,
                    max_retries=2,
                    backoff=0.01,
                )
            )
        assert excinfo.value.code == "unreachable"

    def test_backoff_is_seeded_and_capped(self):
        from repro.harness.parallel import backoff_delay

        first = [
            min(backoff_delay(0.25, attempt, "j0001", 0), 5.0)
            for attempt in range(1, 8)
        ]
        second = [
            min(backoff_delay(0.25, attempt, "j0001", 0), 5.0)
            for attempt in range(1, 8)
        ]
        assert first == second, "reconnect schedule must be reproducible"
        assert max(first) <= 5.0
        assert first[0] < first[-1]


class TestDrainWithWatchers:
    def test_watchers_get_terminal_draining_frame_and_nothing_is_lost(
        self,
    ):
        """Shutdown with subscribers mid-stream: every watcher receives
        a terminal ``draining`` frame (not a bare hangup), the job
        persists, and a restart completes it under the same id."""
        state_dir = tempfile.mkdtemp(prefix="svc", dir="/tmp")
        try:
            params = {
                "benchmarks": ["bzip2", "sjeng", "hmmer"],
                "specs": ["Secure Heap"],
                "seeds": [1, 2],
                "scale": 0.3,
            }
            watcher_frames = [[], []]
            watcher_errors = []
            with running_daemon(state_dir=state_dir, slots=2) as (
                daemon, socket_path, state,
            ):
                with ServiceClient(socket_path=socket_path) as client:
                    job_id = client.submit("sweep", params)["id"]

                def follow(slot):
                    try:
                        with ServiceClient(
                            socket_path=socket_path
                        ) as watch_client:
                            for frame in watch_client.watch(job_id):
                                watcher_frames[slot].append(frame)
                    except Exception as error:  # noqa: BLE001
                        watcher_errors.append(error)

                watchers = [
                    threading.Thread(target=follow, args=(slot,),
                                     daemon=True)
                    for slot in range(2)
                ]
                for thread in watchers:
                    thread.start()
                time.sleep(0.3)  # let them subscribe mid-run
            for thread in watchers:
                thread.join(timeout=60)
                assert not thread.is_alive()
            assert not watcher_errors
            for frames in watcher_frames:
                assert frames, "watcher saw nothing before the drain"
                terminal = frames[-1]
                assert terminal["type"] in ("draining", "done")
                if terminal["type"] == "draining":
                    assert terminal["job"] == job_id
                    assert terminal["persisted"] is True
            # Completions were not lost: restart finishes the job.
            with running_daemon(state_dir=state_dir, slots=2) as (
                daemon2, socket_path2, state2,
            ):
                with ServiceClient(socket_path=socket_path2) as client:
                    assert [j["id"] for j in client.jobs()] == [job_id]
                    final = client.wait(job_id, poll=0.2)
            assert final["state"] == "done"
            cached = final["units"].get("cached", 0)
            executed = daemon2.scheduler.executions_started
            assert cached + executed == final["units"]["total"]
        finally:
            import shutil

            shutil.rmtree(state_dir, ignore_errors=True)
