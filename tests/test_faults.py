"""Deterministic fault injection and the self-healing sweep engine.

Covers the fault plan (seeded compilation, serialisation, env
activation), every injected failure mode the resilience layer must
recover from (hang+timeout, hard crash, transient exception, allocator
MemoryError, corrupt/stale cache entries), retry/backoff/quarantine
semantics, interrupted-sweep checkpoint flushing, failed-unit timing
accounting, and the chaos identity guarantee: a healed chaos sweep is
byte-identical to a fault-free one after ``strip_volatile``.
"""

import json
import os

import pytest

from repro.experiments import run_all as driver
from repro.faults import (
    ALWAYS,
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TransientInjectedFault,
    maybe_inject,
)
from repro.faults.chaos import run_chaos
from repro.faults.inject import corrupt_cache_entry
from repro.harness.parallel import (
    ResultCache,
    UnitResult,
    WorkUnit,
    backoff_delay,
    execute_units,
    fault_summary,
    quarantine_report,
    strip_volatile,
)
from repro.harness.statsdump import fault_rows, format_fault_stats
from repro.obs.tracer import RingTracer

#: Cheap experiment subset shared with test_parallel_engine.
FAST_SCALES = {"table1": None, "table2": None, "_selftest": None}

#: Engine knobs that keep fault tests fast: tiny backoff, short timeout.
FAST = dict(backoff=0.02, timeout=5.0)


@pytest.fixture(autouse=True)
def _fixed_salt(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_SALT", "test-salt")
    monkeypatch.delenv(ENV_VAR, raising=False)


@pytest.fixture
def fast_experiments(monkeypatch):
    monkeypatch.setattr(driver, "EXPERIMENT_SCALES", dict(FAST_SCALES))


def selftest_units(count: int = 4):
    return [
        WorkUnit(
            uid=f"u{i}",
            module="repro.experiments._selftest",
            func="regenerate",
            kwargs={"scale": 1.0, "seed": i},
            key_payload={"i": i},
        )
        for i in range(count)
    ]


def activate(monkeypatch, tmp_path, plan: FaultPlan):
    path = plan.write(tmp_path / "fault-plan.json")
    monkeypatch.setenv(ENV_VAR, str(path))
    return path


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        uids = [f"u{i}" for i in range(20)]
        one = FaultPlan(seed=9).compile_mix(uids, ["hang", "crash"])
        two = FaultPlan(seed=9).compile_mix(uids, ["hang", "crash"])
        assert one.to_dict() == two.to_dict()
        other = FaultPlan(seed=10).compile_mix(uids, ["hang", "crash"])
        assert one.to_dict() != other.to_dict()

    def test_mix_covers_every_kind(self):
        uids = [f"u{i}" for i in range(8)]
        plan = FaultPlan(seed=1).compile_mix(
            uids, ["hang", "crash", "transient"], fraction=0.5
        )
        assert set(plan.kind_counts()) == {"hang", "crash", "transient"}

    def test_permanent_marks_quarantine_fodder(self):
        uids = [f"u{i}" for i in range(10)]
        plan = FaultPlan(seed=2).compile_mix(
            uids, ["raise"], fraction=0.5, permanent=2
        )
        assert len(plan.permanent_uids()) == 2
        for uid in plan.permanent_uids():
            assert plan.faults[uid].fail_attempts == ALWAYS

    def test_rates_are_seeded_and_bounded(self):
        uids = [f"u{i}" for i in range(200)]
        plan = FaultPlan(seed=3).compile_rates(uids, {"raise": 0.25})
        again = FaultPlan(seed=3).compile_rates(uids, {"raise": 0.25})
        assert plan.to_dict() == again.to_dict()
        assert 0 < len(plan.faults) < len(uids)
        with pytest.raises(ValueError):
            FaultPlan(seed=3).compile_rates(uids, {"raise": 0.7, "hang": 0.7})

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=4).compile_mix(
            ["a", "b", "c"], ["transient", "corrupt_cache"], fraction=1.0
        )
        path = plan.write(tmp_path / "plan.json")
        loaded = FaultPlan.load(path)
        assert loaded.to_dict() == plan.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="gremlin")
        with pytest.raises(ValueError):
            FaultPlan(seed=0).compile_mix(["a"], ["gremlin"])


class TestInjection:
    def test_dormant_without_env(self):
        maybe_inject("anything", 1)  # no plan file: must be a no-op

    def test_raise_and_transient(self, monkeypatch, tmp_path):
        plan = FaultPlan(
            seed=0,
            faults={
                "a": FaultSpec(kind="raise", fail_attempts=ALWAYS),
                "b": FaultSpec(kind="transient", fail_attempts=2),
            },
        )
        activate(monkeypatch, tmp_path, plan)
        with pytest.raises(InjectedFault):
            maybe_inject("a", 5)
        with pytest.raises(TransientInjectedFault):
            maybe_inject("b", 2)
        maybe_inject("b", 3)  # healed past fail_attempts
        maybe_inject("unlisted", 1)  # not in the plan

    def test_memory_error(self, monkeypatch, tmp_path):
        plan = FaultPlan(
            seed=0, faults={"m": FaultSpec(kind="memory_error")}
        )
        activate(monkeypatch, tmp_path, plan)
        with pytest.raises(MemoryError):
            maybe_inject("m", 1)


class TestBackoff:
    def test_deterministic_and_exponential(self):
        first = backoff_delay(0.1, 1, "unit", seed=5)
        assert first == backoff_delay(0.1, 1, "unit", seed=5)
        assert backoff_delay(0.1, 1, "unit", seed=6) != first
        # jitter is bounded: [0.5, 1.5) x base x 2^(attempt-1)
        for attempt in (1, 2, 3):
            delay = backoff_delay(0.1, attempt, "unit", seed=5)
            scale = 0.1 * 2 ** (attempt - 1)
            assert 0.5 * scale <= delay < 1.5 * scale


class TestResilienceLayer:
    def test_transient_retries_to_success(self, monkeypatch, tmp_path):
        units = selftest_units(3)
        plan = FaultPlan(
            seed=0,
            faults={"u1": FaultSpec(kind="transient", fail_attempts=2)},
        )
        activate(monkeypatch, tmp_path, plan)
        tracer = RingTracer()
        results = execute_units(
            units, jobs=2, retries=3, tracer=tracer, **FAST
        )
        assert results["u1"].ok and results["u1"].attempts == 3
        assert results["u0"].ok and results["u0"].attempts == 1
        assert results["u1"].value == "selftest ok: scale=1.0 seed=1"
        kinds = tracer.counts()
        assert kinds.get("fault.retry") == 2

    def test_crash_is_recovered_not_deadlocked(self, monkeypatch, tmp_path):
        # A worker SIGKILL-style hard death (os._exit skips all Python
        # unwinding, like the OOM killer) must surface as a structured
        # failure, not hang the sweep; a retry heals it.
        units = selftest_units(4)
        plan = FaultPlan(
            seed=0, faults={"u2": FaultSpec(kind="crash", fail_attempts=1)}
        )
        activate(monkeypatch, tmp_path, plan)
        tracer = RingTracer()
        results = execute_units(
            units, jobs=2, retries=1, tracer=tracer, **FAST
        )
        assert all(result.ok for result in results.values())
        assert results["u2"].attempts == 2
        assert tracer.counts().get("fault.crash") == 1

    def test_permanent_crash_quarantined(self, monkeypatch, tmp_path):
        units = selftest_units(3)
        plan = FaultPlan(
            seed=0,
            faults={"u0": FaultSpec(kind="crash", fail_attempts=ALWAYS)},
        )
        activate(monkeypatch, tmp_path, plan)
        results = execute_units(units, jobs=2, retries=1, **FAST)
        assert not results["u0"].ok
        assert results["u0"].quarantined
        assert results["u0"].error["type"] == "WorkerCrash"
        assert results["u0"].attempts == 2
        # every other unit still completed (no deadlock, no poisoning)
        assert results["u1"].ok and results["u2"].ok
        assert list(quarantine_report(results)) == ["u0"]

    def test_hang_killed_at_timeout_and_retried(self, monkeypatch, tmp_path):
        units = selftest_units(2)
        plan = FaultPlan(
            seed=0,
            faults={
                "u0": FaultSpec(
                    kind="hang", fail_attempts=1, hang_seconds=60.0
                )
            },
        )
        activate(monkeypatch, tmp_path, plan)
        tracer = RingTracer()
        results = execute_units(
            units, jobs=2, retries=1, timeout=1.0, backoff=0.02,
            tracer=tracer,
        )
        assert results["u0"].ok and results["u0"].attempts == 2
        assert tracer.counts().get("fault.timeout") == 1
        # the killed attempt's wall time is accounted
        assert results["u0"].wall_seconds >= 1.0

    def test_permanent_hang_quarantined_as_timeout(
        self, monkeypatch, tmp_path
    ):
        units = selftest_units(2)
        plan = FaultPlan(
            seed=0,
            faults={
                "u1": FaultSpec(
                    kind="hang", fail_attempts=ALWAYS, hang_seconds=60.0
                )
            },
        )
        activate(monkeypatch, tmp_path, plan)
        results = execute_units(units, jobs=2, retries=1, timeout=0.5,
                                backoff=0.02)
        assert not results["u1"].ok
        assert results["u1"].error["type"] == "WorkerTimeout"
        assert results["u1"].quarantined
        assert results["u0"].ok

    def test_memory_error_retried(self, monkeypatch, tmp_path):
        units = selftest_units(2)
        plan = FaultPlan(
            seed=0,
            faults={"u0": FaultSpec(kind="memory_error", fail_attempts=1)},
        )
        activate(monkeypatch, tmp_path, plan)
        results = execute_units(units, jobs=2, retries=1, **FAST)
        assert results["u0"].ok and results["u0"].attempts == 2

    def test_healed_run_matches_fault_free(self, monkeypatch, tmp_path):
        units = selftest_units(4)
        clean = execute_units(units, jobs=2)
        plan = FaultPlan(
            seed=0,
            faults={
                "u0": FaultSpec(kind="transient", fail_attempts=1),
                "u3": FaultSpec(kind="crash", fail_attempts=1),
            },
        )
        activate(monkeypatch, tmp_path, plan)
        chaotic = execute_units(units, jobs=2, retries=2, **FAST)
        assert {uid: r.value for uid, r in clean.items()} == {
            uid: r.value for uid, r in chaotic.items()
        }

    def test_fault_summary_counters(self, monkeypatch, tmp_path):
        units = selftest_units(3)
        plan = FaultPlan(
            seed=0,
            faults={
                "u0": FaultSpec(kind="transient", fail_attempts=1),
                "u1": FaultSpec(kind="raise", fail_attempts=ALWAYS),
            },
        )
        activate(monkeypatch, tmp_path, plan)
        tracer = RingTracer()
        results = execute_units(
            units, jobs=2, retries=1, tracer=tracer, **FAST
        )
        summary = fault_summary(results, tracer)
        assert summary["retries"] == 2  # one heal + one futile retry
        assert summary["quarantined"] == 1
        text = format_fault_stats(summary)
        assert "fault.retries" in text and "fault.quarantined" in text
        assert [name for name, _, _ in fault_rows(summary)] == [
            "fault.retries",
            "fault.timeouts",
            "fault.crashes",
            "fault.quarantined",
        ]


class TestCacheIntegrity:
    def test_uid_mismatch_reads_as_miss(self, tmp_path):
        # Regression: a stale-salt bug, hash collision, or hand-edited
        # entry must never hand unit A the value recorded for unit B.
        cache = ResultCache(tmp_path)
        unit = WorkUnit(uid="real", module="m", func="f",
                        key_payload={"a": 1})
        key = unit.cache_key("s")
        cache.put(key, unit, {"v": 1})
        imposter = WorkUnit(uid="imposter", module="m", func="f",
                            key_payload={"a": 1})
        assert cache.get(key, imposter) is None
        assert cache.mismatches == 1
        assert cache.get(key, unit)["value"] == {"v": 1}

    def test_payload_mismatch_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = WorkUnit(uid="u", module="m", func="f", key_payload={"a": 1})
        key = unit.cache_key("s")
        cache.put(key, unit, "value")
        edited = WorkUnit(uid="u", module="m", func="f",
                          key_payload={"a": 2})
        assert cache.get(key, edited) is None
        assert cache.mismatches == 1

    def test_corrupt_entries_recomputed(self, tmp_path):
        units = selftest_units(2)
        cache = ResultCache(tmp_path / "cache")
        corrupt_cache_entry(
            cache, units[0], FaultSpec(kind="corrupt_cache"), salt=None
        )
        corrupt_cache_entry(
            cache,
            units[1],
            FaultSpec(kind="corrupt_cache", variant="stale-uid"),
            salt=None,
        )
        results = execute_units(units, jobs=1, cache=cache)
        assert all(result.ok for result in results.values())
        assert not any(result.cached for result in results.values())
        for unit in units:
            assert "poisoned" not in str(results[unit.uid].value)
        # the damaged entries were overwritten with good ones
        rerun = execute_units(units, jobs=1, cache=cache)
        assert all(result.cached for result in rerun.values())


class TestTimingAccounting:
    def test_failed_unit_timing_reaches_manifest(
        self, tmp_path, fast_experiments, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SELFTEST_BOOM", "1")
        out = driver.run_all(tmp_path / "boom", scale=0.05, jobs=2,
                             quiet=True)
        manifest = json.loads((out / "manifest.json").read_text())
        record = manifest["experiments"]["_selftest"]
        assert record["status"] == "error"
        assert record["wall_seconds"] >= 0.0
        timing = manifest["units_timing"]
        # aggregate includes every unit, failed ones too
        assert timing["wall_seconds"] >= sum(
            rec["wall_seconds"]
            for rec in manifest["experiments"].values()
            if rec["status"] == "ok"
        )
        assert timing["cpu_seconds"] > 0.0

    def test_retry_timing_accumulates(self, monkeypatch, tmp_path):
        units = selftest_units(1)
        plan = FaultPlan(
            seed=0,
            faults={
                "u0": FaultSpec(
                    kind="hang", fail_attempts=1, hang_seconds=60.0
                )
            },
        )
        activate(monkeypatch, tmp_path, plan)
        results = execute_units(units, jobs=1, retries=1, timeout=0.5,
                                backoff=0.02)
        # one killed 0.5s attempt + one clean attempt
        assert results["u0"].ok
        assert results["u0"].wall_seconds >= 0.5


class TestInterruptFlush:
    def test_completed_results_flushed_on_interrupt(
        self, monkeypatch, tmp_path
    ):
        units = selftest_units(4)
        cache = ResultCache(tmp_path / "cache")
        done = []

        def progress(message):
            done.append(message)
            if len(done) == len(units):
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            execute_units(units, jobs=2, cache=cache, progress=progress)
        # every completed unit reached the cache before the interrupt
        # tore the engine down: the resumed sweep re-executes nothing.
        stores = cache.stores
        resumed = execute_units(units, jobs=2, cache=cache)
        assert cache.stores == stores
        assert all(result.cached for result in resumed.values())

    def test_interrupt_flush_supervised_path(self, monkeypatch, tmp_path):
        units = selftest_units(4)
        cache = ResultCache(tmp_path / "cache")
        done = []

        def progress(message):
            done.append(message)
            if len(done) == len(units):
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            # retries>0 routes through the supervised executor
            execute_units(units, jobs=2, cache=cache, progress=progress,
                          retries=1, backoff=0.02)
        stores = cache.stores
        resumed = execute_units(units, jobs=2, cache=cache)
        assert cache.stores == stores
        assert all(result.cached for result in resumed.values())


class TestRunAllDegraded:
    def test_quarantine_section_and_exit_code(
        self, tmp_path, fast_experiments, monkeypatch
    ):
        plan = FaultPlan(
            seed=0,
            faults={
                "_selftest": FaultSpec(kind="raise", fail_attempts=ALWAYS)
            },
        )
        activate(monkeypatch, tmp_path, plan)
        outdir = str(tmp_path / "degraded")
        code = driver.main(
            ["--outdir", outdir, "--scale", "0.05", "--jobs", "2",
             "--retries", "1"]
        )
        assert code == 1  # degraded, not aborted
        manifest = json.loads(
            (tmp_path / "degraded" / "manifest.json").read_text()
        )
        assert list(manifest["quarantine"]) == ["_selftest"]
        entry = manifest["quarantine"]["_selftest"]
        assert entry["attempts"] == 2
        assert entry["error"]["type"] == "InjectedFault"
        assert manifest["fault"]["quarantined"] == 1
        assert manifest["fault"]["retries"] == 1
        # the engine fault events were exported for repro report
        events = (tmp_path / "degraded" / "events-engine.jsonl")
        assert events.is_file()
        kinds = [json.loads(line)["kind"]
                 for line in events.read_text().splitlines()]
        assert "fault.retry" in kinds and "fault.quarantine" in kinds
        # every other experiment completed and was written
        for name in ("table1", "table2"):
            assert manifest["experiments"][name]["status"] == "ok"
            assert (tmp_path / "degraded" / f"{name}.txt").exists()

    def test_report_renders_fault_section(
        self, tmp_path, fast_experiments, monkeypatch
    ):
        from repro.obs.report import _fault_section

        plan = FaultPlan(
            seed=0,
            faults={
                "_selftest": FaultSpec(kind="raise", fail_attempts=ALWAYS)
            },
        )
        activate(monkeypatch, tmp_path, plan)
        out = driver.run_all(tmp_path / "deg", scale=0.05, jobs=2,
                             retries=1, backoff=0.02, quiet=True)
        manifest = json.loads((out / "manifest.json").read_text())
        lines = "\n".join(_fault_section(manifest))
        assert "quarantined" in lines
        assert "QUARANTINED _selftest" in lines


class TestChaosIdentity:
    def test_chaos_run_matches_baseline(
        self, tmp_path, fast_experiments, monkeypatch
    ):
        report = run_chaos(
            tmp_path / "chaos",
            scale=0.05,
            jobs=2,
            timeout=20.0,
            retries=2,
            backoff=0.02,
            fault_seed=7,
            kinds=("crash", "transient", "corrupt_cache"),
            fraction=1.0,
            permanent=1,
            quiet=True,
        )
        assert report.problems == []
        assert report.mismatches == []
        assert report.ok
        assert len(report.quarantined) == 1
        assert report.quarantined == report.plan.permanent_uids()
        # the degraded manifest itself strips clean against baseline
        # once quarantined units are excluded
        baseline = json.loads(
            (report.baseline_dir / "manifest.json").read_text()
        )
        chaos = json.loads((report.chaos_dir / "manifest.json").read_text())
        for manifest in (baseline, chaos):
            for uid in report.quarantined:
                manifest["experiments"].pop(uid, None)
        assert strip_volatile(baseline) == strip_volatile(chaos)

    def test_chaos_cli(self, tmp_path, fast_experiments, monkeypatch):
        from repro.__main__ import main

        code = main(
            [
                "chaos",
                "--outdir", str(tmp_path / "cli"),
                "--scale", "0.05",
                "--jobs", "2",
                "--timeout", "20",
                "--retries", "2",
                "--kinds", "transient", "crash",
                "--fraction", "1.0",
            ]
        )
        assert code == 0

    def test_chaos_cli_rejects_unknown_kind(self, tmp_path):
        from repro.__main__ import main

        assert main(["chaos", "--outdir", str(tmp_path),
                     "--kinds", "gremlin"]) == 2


class TestDormantLayer:
    def test_fault_free_path_untouched(self, monkeypatch):
        # With no env hook and no timeout/retries the engine must take
        # the classic dispatch path: plain UnitResults, attempts == 1,
        # nothing quarantined.
        units = selftest_units(3)
        results = execute_units(units, jobs=2)
        for result in results.values():
            assert result.ok
            assert result.attempts == 1
            assert not result.quarantined
        assert fault_summary(results) == {
            "retries": 0, "timeouts": 0, "crashes": 0, "quarantined": 0,
        }

    def test_volatile_fields_cover_resilience_keys(self):
        from repro.harness.parallel import VOLATILE_FIELDS

        stripped = strip_volatile(
            {
                "attempts": 3,
                "fault": {"retries": 1},
                "quarantine": {"u": {}},
                "keep": 1,
            }
        )
        assert stripped == {"keep": 1}
        assert {"attempts", "fault", "quarantine"} <= VOLATILE_FIELDS
