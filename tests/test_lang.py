"""Tests for the Mini-C language: semantics and defense integration."""

import pytest

from repro.core import RestException
from repro.defenses import AsanDefense, PlainDefense, RestDefense
from repro.lang import (
    ArrayDecl,
    Assign,
    BinOp,
    Call,
    Const,
    For,
    Free,
    Function,
    If,
    Interpreter,
    Load,
    Malloc,
    MemcpyStmt,
    MiniCError,
    Program,
    Return,
    Store,
    Var,
    While,
    heartbleed_program,
    sum_array_program,
)
from repro.lang.programs import branchy_program, use_after_free_program
from repro.runtime import Machine
from repro.runtime.shadow import AsanViolation


def run(program, defense=None, *args):
    defense = defense or PlainDefense(Machine())
    return Interpreter(program, defense).run(*args)


def main_with(body, arrays=(), params=()):
    return Program(
        [Function(name="main", params=params, arrays=arrays, body=body)]
    )


class TestExpressionSemantics:
    def test_arithmetic(self):
        program = main_with([
            Return(BinOp("+", BinOp("*", Const(6), Const(7)), Const(1)))
        ])
        assert run(program) == 43

    def test_comparisons_yield_01(self):
        for op, expected in (("<", 1), (">", 0), ("==", 0), ("!=", 1)):
            program = main_with([Return(BinOp(op, Const(2), Const(5)))])
            assert run(program) == expected, op

    def test_division_and_modulo(self):
        program = main_with([
            Return(BinOp("+", BinOp("//", Const(17), Const(5)),
                         BinOp("%", Const(17), Const(5)))),
        ])
        assert run(program) == 3 + 2

    def test_unknown_operator_rejected(self):
        program = main_with([Return(BinOp("^", Const(1), Const(1)))])
        with pytest.raises(MiniCError):
            run(program)

    def test_undefined_variable_rejected(self):
        with pytest.raises(MiniCError):
            run(main_with([Return(Var("ghost"))]))


class TestControlFlow:
    def test_if_else(self):
        program = main_with([
            If(Const(0), [Return(Const(1))], [Return(Const(2))]),
        ])
        assert run(program) == 2

    def test_while_accumulates(self):
        assert run(branchy_program(10)) == 1 + 3 + 5 + 7 + 9

    def test_for_range(self):
        program = main_with([
            Assign("s", Const(0)),
            For("i", Const(2), Const(6), [
                Assign("s", BinOp("+", Var("s"), Var("i"))),
            ]),
            Return(Var("s")),
        ])
        assert run(program) == 2 + 3 + 4 + 5

    def test_function_call_and_params(self):
        double = Function("double", params=("x",),
                          body=[Return(BinOp("*", Var("x"), Const(2)))])
        main = Function("main", body=[Return(Call("double", (Const(21),)))])
        assert run(Program([double, main])) == 42

    def test_wrong_arity_rejected(self):
        double = Function("double", params=("x",), body=[Return(Var("x"))])
        main = Function("main", body=[Return(Call("double", ()))])
        with pytest.raises(MiniCError):
            run(Program([double, main]))

    def test_main_args(self):
        program = Program([
            Function("main", params=("a", "b"),
                     body=[Return(BinOp("-", Var("a"), Var("b")))])
        ])
        assert run(program, None, 50, 8) == 42

    def test_implicit_return_zero(self):
        assert run(main_with([Assign("x", Const(9))])) == 0

    def test_runaway_loop_guard(self):
        program = main_with([While(Const(1), [Assign("x", Const(1))])])
        with pytest.raises(MiniCError):
            run(program)


class TestMemorySemantics:
    def test_stack_array_store_load(self):
        program = main_with(
            [
                Store(Var("buf"), Const(3), Const(777)),
                Return(Load(Var("buf"), Const(3))),
            ],
            arrays=(ArrayDecl("buf", 8),),
        )
        assert run(program) == 777

    def test_heap_roundtrip(self):
        program = main_with([
            Assign("p", Malloc(Const(64))),
            Store(Var("p"), Const(0), Const(123)),
            Assign("v", Load(Var("p"), Const(0))),
            Free(Var("p")),
            Return(Var("v")),
        ])
        assert run(program) == 123

    def test_memcpy_between_heap_buffers(self):
        program = main_with([
            Assign("src", Malloc(Const(64))),
            Assign("dst", Malloc(Const(64))),
            Store(Var("src"), Const(2), Const(9009)),
            MemcpyStmt(Var("dst"), Var("src"), Const(64)),
            Return(Load(Var("dst"), Const(2))),
        ])
        assert run(program) == 9009

    def test_pointer_arithmetic_is_raw(self):
        """C semantics: pointers are ints; offsets are unchecked."""
        program = main_with([
            Assign("p", Malloc(Const(64))),
            Assign("q", BinOp("+", Var("p"), Const(16))),
            Store(Var("q"), Const(0), Const(5)),
            Return(Load(Var("p"), Const(2))),
        ])
        assert run(program) == 5


class TestSameResultUnderEveryDefense:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PlainDefense(Machine()),
            lambda: AsanDefense(Machine()),
            lambda: RestDefense(Machine()),
            lambda: RestDefense(Machine(), allocator="fast"),
        ],
        ids=["plain", "asan", "rest", "rest-fast"],
    )
    def test_benign_program_result_invariant(self, factory):
        assert run(sum_array_program(8), factory()) == sum(
            3 * i for i in range(8)
        )


class TestBugsFlowToDefense:
    def test_heartbleed_leaks_under_plain(self):
        leak = run(heartbleed_program())
        assert leak == 0x5345_4352_4554  # "SECRET" material

    def test_heartbleed_caught_by_rest_heap_only(self):
        with pytest.raises(RestException):
            run(
                heartbleed_program(),
                RestDefense(Machine(), protect_stack=False),
            )

    def test_heartbleed_caught_by_asan(self):
        with pytest.raises(AsanViolation):
            run(heartbleed_program(), AsanDefense(Machine()))

    def test_stack_sweep_caught_by_rest_full(self):
        with pytest.raises(RestException):
            run(sum_array_program(8, overrun=16), RestDefense(Machine()))

    def test_stack_sweep_missed_by_rest_heap_only(self):
        """Heap-only REST leaves the stack unprotected — the sweep
        reads past the array into the frame, undetected (paper §IV-A:
        users may forego stack protection)."""
        run(
            sum_array_program(8, overrun=4),
            RestDefense(Machine(), protect_stack=False),
        )

    def test_uaf_caught_by_rest(self):
        with pytest.raises(RestException):
            run(use_after_free_program(), RestDefense(Machine()))

    def test_uaf_returns_stale_data_under_plain(self):
        assert run(use_after_free_program()) == 0xC0FFEE

    def test_single_cell_overflow_write(self):
        program = main_with(
            [Store(Var("buf"), Const(8), Const(1))],  # one past the end
            arrays=(ArrayDecl("buf", 8),),
        )
        with pytest.raises(RestException):
            run(program, RestDefense(Machine()))
        with pytest.raises(AsanViolation):
            run(program, AsanDefense(Machine()))
        run(program)  # plain: silent corruption

    def test_epilogue_runs_even_when_body_faults(self):
        """The defense's frame teardown must not leak on exceptions."""
        defense = RestDefense(Machine())
        program = sum_array_program(8, overrun=16)
        with pytest.raises(RestException):
            run(program, defense)
        assert defense.stack.depth == 0


class TestProgramStructure:
    def test_unknown_function(self):
        with pytest.raises(KeyError):
            run(Program([Function("main", body=[Return(Call("nope"))])]))

    def test_program_function_lookup(self):
        program = branchy_program()
        assert program.function("is_odd").params == ("x",)
        with pytest.raises(KeyError):
            program.function("missing")
