"""Tests for the system-level per-process token design (paper §IV-B)."""

import pytest

from repro.core import RestException
from repro.core.exceptions import PrivilegeError
from repro.os import Kernel, TokenSwitchPolicy
from repro.os.kernel import TokenLeakError


@pytest.fixture
def kernel():
    return Kernel()


class TestContextSwitching:
    def test_each_process_gets_unique_token(self, kernel):
        a = kernel.spawn()
        b = kernel.spawn()
        assert a.token != b.token

    def test_single_policy_shares_token(self):
        kernel = Kernel(policy=TokenSwitchPolicy.SINGLE)
        a = kernel.spawn()
        b = kernel.spawn()
        assert a.token == b.token

    def test_switch_installs_token(self, kernel):
        a = kernel.spawn()
        b = kernel.spawn()
        assert kernel.hierarchy.token_config.token_for_hardware() == b.token
        kernel.switch_to(a)
        assert kernel.hierarchy.token_config.token_for_hardware() == a.token

    def test_tokens_survive_context_switches(self, kernel):
        """A's armed locations protect again when A runs again —
        without the kernel tracking any armed addresses."""
        a = kernel.spawn()
        kernel.hierarchy.arm(a.arena_base)
        b = kernel.spawn()  # switches away; A's tokens materialise
        kernel.hierarchy.write(b.arena_base, b"b-data!!")
        kernel.switch_to(a)
        with pytest.raises(RestException):
            kernel.hierarchy.read(a.arena_base, 8)
        kernel.hierarchy.disarm(a.arena_base)
        kernel.hierarchy.read(a.arena_base, 8)

    def test_foreign_tokens_invisible(self, kernel):
        """B reading A's (materialised) token bytes does not fault —
        different token value — and does not learn B's own token."""
        a = kernel.spawn()
        kernel.hierarchy.arm(a.arena_base)
        b = kernel.spawn()
        # B inspects A's arena (shared-memory scenario): the bytes are
        # A's token, which under B's register value is just data.
        data, _ = kernel.hierarchy.read(a.arena_base, 64)
        assert data == a.token.value
        assert data != b.token.value

    def test_redundant_switch_is_noop(self, kernel):
        a = kernel.spawn()
        before = kernel.context_switches
        kernel.switch_to(a)
        assert kernel.context_switches == before

    def test_switch_to_unknown_process(self, kernel):
        from repro.os.kernel import Process
        from repro.core.token import Token

        ghost = Process(99, Token.random(64, seed=5), 0x1000, 0x1000)
        with pytest.raises(KeyError):
            kernel.switch_to(ghost)


class TestFork:
    def test_child_inherits_data(self, kernel):
        parent = kernel.spawn()
        kernel.hierarchy.write(parent.arena_base + 64, b"heirloom")
        child = kernel.fork(parent)
        kernel.switch_to(child)
        data, _ = kernel.hierarchy.read(child.arena_base + 64, 8)
        assert data == b"heirloom"

    def test_child_tokens_rekeyed(self, kernel):
        """Inherited redzones are re-keyed to the child's token, so the
        child's copies are *protected*, not silently plain bytes."""
        parent = kernel.spawn()
        kernel.hierarchy.arm(parent.arena_base + 128)
        child = kernel.fork(parent)
        assert kernel.stats_last_fork_rekeyed == 1
        kernel.switch_to(child)
        with pytest.raises(RestException):
            kernel.hierarchy.read(child.arena_base + 128, 8)

    def test_parent_tokens_unaffected_by_fork(self, kernel):
        parent = kernel.spawn()
        kernel.hierarchy.arm(parent.arena_base)
        kernel.fork(parent)
        kernel.switch_to(parent)
        with pytest.raises(RestException):
            kernel.hierarchy.read(parent.arena_base, 8)

    def test_child_has_distinct_token_and_parent_link(self, kernel):
        parent = kernel.spawn()
        child = kernel.fork(parent)
        assert child.token != parent.token
        assert child.parent_pid == parent.pid


class TestIpc:
    def test_plain_data_crosses(self, kernel):
        a = kernel.spawn()
        b = kernel.spawn()
        kernel.switch_to(a)
        kernel.hierarchy.write(a.arena_base, b"message!")
        kernel.pipe_send(a, a.arena_base, b, b.arena_base, 8)
        kernel.switch_to(b)
        data, _ = kernel.hierarchy.read(b.arena_base, 8)
        assert data == b"message!"

    def test_kernel_copy_over_armed_region_faults(self, kernel):
        """Confused-deputy: a syscall sweeping through the sender's
        live token raises the privileged REST exception."""
        a = kernel.spawn()
        b = kernel.spawn()
        kernel.switch_to(a)
        kernel.hierarchy.arm(a.arena_base + 64)
        with pytest.raises(RestException):
            kernel.pipe_send(a, a.arena_base, b, b.arena_base, 128)

    def test_token_value_bytes_leak_blocked(self, kernel):
        """Token *bytes* that never pass through the fill detector (the
        §V-B transient case: data acquires the token value while the
        line is already in L1) raise no hardware exception — the
        kernel's IPC scan is the backstop that keeps the value from
        crossing the process boundary."""
        a = kernel.spawn()
        b = kernel.spawn()
        kernel.switch_to(a)
        # The payload happens to equal A's token value, written as
        # ordinary data into an L1-resident line: no token bit is set.
        kernel.hierarchy.write(a.arena_base, a.token.value)
        assert not kernel.hierarchy.is_armed(a.arena_base)
        with pytest.raises(TokenLeakError):
            kernel.pipe_send(a, a.arena_base, b, b.arena_base, 64)
        assert kernel.token_leaks_blocked == 1

    def test_range_ownership_enforced(self, kernel):
        a = kernel.spawn()
        b = kernel.spawn()
        with pytest.raises(PrivilegeError):
            kernel.pipe_send(a, b.arena_base, b, b.arena_base, 8)
        with pytest.raises(PrivilegeError):
            kernel.pipe_send(a, a.arena_base, b, a.arena_base, 8)

    def test_describe(self, kernel):
        kernel.spawn()
        text = kernel.describe()
        assert "per-process" in text and "pid 1" in text
