"""Tests for the out-of-order core pipeline."""

import pytest

from repro.cache import MemoryHierarchy
from repro.core import Mode, RestException, Token, TokenConfigRegister
from repro.cpu import CoreConfig, MicroOp, OpType, OutOfOrderCore
from repro.cpu.isa import alu, arm_op, branch, disarm_op, load, store


def make_core(mode=Mode.SECURE, config=None, seed=1):
    reg = TokenConfigRegister(Token.random(64, seed=seed), mode=mode)
    hierarchy = MemoryHierarchy(token_config=reg)
    return OutOfOrderCore(hierarchy, config=config)


class TestBasicExecution:
    def test_empty_trace(self):
        core = make_core()
        stats = core.run([])
        assert stats.committed == 0

    def test_commits_all_ops(self):
        core = make_core()
        stats = core.run([alu() for _ in range(100)])
        assert stats.committed == 100
        assert stats.op_counts["alu"] == 100

    def test_ipc_bounded_by_width(self):
        core = make_core()
        stats = core.run([alu() for _ in range(1000)])
        assert 0 < stats.ipc <= core.config.commit_width

    def test_independent_alus_superscalar(self):
        """Independent ALU ops should commit at multiple per cycle."""
        core = make_core()
        stats = core.run([alu() for _ in range(2000)])
        assert stats.ipc > 2.0

    def test_dependency_chain_serialises(self):
        """A chain of dependent ops cannot exceed IPC 1."""
        core = make_core()
        stats = core.run([alu(deps=(1,)) for _ in range(2000)])
        assert stats.ipc <= 1.05

    def test_loads_and_stores_execute(self):
        core = make_core()
        ops = [store(0x1000 + 8 * i) for i in range(10)]
        ops += [load(0x1000 + 8 * i) for i in range(10)]
        stats = core.run(ops)
        assert stats.committed == 20
        assert stats.op_counts["load"] == 10
        assert stats.op_counts["store"] == 10

    def test_in_order_config_slower(self):
        trace = lambda: [alu() for _ in range(1000)]
        ooo = make_core().run(trace())
        ino = make_core(config=CoreConfig.in_order()).run(trace())
        assert ino.cycles > ooo.cycles

    def test_max_cycles_guard(self):
        core = make_core()
        with pytest.raises(RuntimeError):
            core.run([alu() for _ in range(10000)], max_cycles=10)


class TestMemoryBehaviour:
    def test_cache_misses_cost_cycles(self):
        # Loads striding through memory (cold misses) vs hitting one line.
        cold = make_core()
        cold_stats = cold.run([load(0x10000 + 64 * i) for i in range(200)])
        warm = make_core()
        warm.run([load(0x10000)])
        warm_stats = warm.run([load(0x10000) for _ in range(200)])
        assert cold_stats.cycles > warm_stats.cycles

    def test_store_to_load_forwarding_counted(self):
        core = make_core()
        ops = []
        for i in range(50):
            ops.append(store(0x2000, 8))
            ops.append(load(0x2000, 8))
        stats = core.run(ops)
        assert stats.lsq_forwards > 0

    def test_branches_and_mispredicts(self):
        core = make_core()
        import random

        rng = random.Random(1)
        ops = [branch(rng.random() < 0.5, pc=0x400 + 4 * (i % 7)) for i in range(500)]
        stats = core.run(ops)
        assert stats.branch_mispredicts > 0
        assert stats.op_counts["branch"] == 500


class TestRestInPipeline:
    def test_arm_disarm_commit(self):
        core = make_core()
        stats = core.run([arm_op(0x4000), disarm_op(0x4000)])
        assert stats.committed == 2
        assert core.hierarchy.stats.arms == 1
        assert core.hierarchy.stats.disarms == 1

    def test_load_of_armed_location_faults(self):
        core = make_core()
        with pytest.raises(RestException) as info:
            core.run([arm_op(0x4000)] + [alu()] * 300 + [load(0x4000)])
        assert info.value.cycle is not None
        assert not info.value.precise  # secure mode: imprecise

    def test_debug_mode_fault_is_precise(self):
        core = make_core(mode=Mode.DEBUG)
        with pytest.raises(RestException) as info:
            core.run([arm_op(0x4000)] + [alu()] * 300 + [load(0x4000)])
        assert info.value.precise

    def test_load_near_inflight_arm_lsq_violation(self):
        """A load issued right after an arm to the same line trips the
        LSQ check before the cache even sees it."""
        core = make_core()
        with pytest.raises(RestException):
            core.run([arm_op(0x4000), load(0x4008)])

    def test_token_state_survives_pipeline(self):
        core = make_core()
        core.run([arm_op(0x5000)])
        assert core.hierarchy.is_armed(0x5000)
        core.run([disarm_op(0x5000)])
        assert not core.hierarchy.is_armed(0x5000)


class TestDebugModeCosts:
    def _store_heavy_trace(self, n=600):
        # Store-heavy with cold lines so writes take a while: the debug
        # commit gate has something to wait for.
        ops = []
        for i in range(n):
            ops.append(store(0x100000 + 64 * i, 8))
            ops.append(alu())
        return ops

    def test_debug_mode_slower_on_stores(self):
        secure = make_core(Mode.SECURE).run(self._store_heavy_trace())
        debug = make_core(Mode.DEBUG).run(self._store_heavy_trace())
        assert debug.cycles > secure.cycles

    def test_debug_mode_rob_blocked_by_store_higher(self):
        """Paper §VI-B: ROB blocked-by-store cycles ~an order of
        magnitude higher in debug mode."""
        secure = make_core(Mode.SECURE).run(self._store_heavy_trace())
        debug = make_core(Mode.DEBUG).run(self._store_heavy_trace())
        assert (
            debug.rob_blocked_by_store_cycles
            > 3 * max(1, secure.rob_blocked_by_store_cycles)
        )
