"""Tests for the L1 fill-path token detector."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Token, TokenConfigRegister, TokenDetector


def make_detector(width=64, seed=1):
    reg = TokenConfigRegister(Token.random(width, seed=seed))
    return TokenDetector(reg), reg.token_for_hardware()


class TestScanLine:
    def test_detects_full_line_token(self):
        detector, token = make_detector(64)
        assert detector.scan_line(token.value) == 0b1

    def test_plain_data_no_match(self):
        detector, _ = make_detector(64)
        assert detector.scan_line(b"\x00" * 64) == 0
        assert detector.scan_line(bytes(range(64))) == 0

    def test_one_bit_flip_defeats_match(self):
        detector, token = make_detector(64)
        corrupted = bytearray(token.value)
        corrupted[63] ^= 0x80
        assert detector.scan_line(bytes(corrupted)) == 0

    def test_half_line_tokens_two_slots(self):
        detector, token = make_detector(32)
        assert detector.slots_per_line == 2
        line = token.value + b"\x00" * 32
        assert detector.scan_line(line) == 0b01
        line = b"\x00" * 32 + token.value
        assert detector.scan_line(line) == 0b10
        assert detector.scan_line(token.value * 2) == 0b11

    def test_quarter_line_tokens_four_slots(self):
        detector, token = make_detector(16)
        assert detector.slots_per_line == 4
        line = b"\x00" * 16 + token.value + b"\x00" * 16 + token.value
        assert detector.scan_line(line) == 0b1010

    def test_rejects_wrong_size(self):
        detector, _ = make_detector(64)
        with pytest.raises(ValueError):
            detector.scan_line(b"\x00" * 63)

    def test_beat_compares_early_out(self):
        detector, token = make_detector(64)
        # A line differing in the first beat costs 1 compare.
        detector.scan_line(b"\xff" * 64)
        assert detector.beat_compares == 1
        # A full match costs all 16 beats.
        detector.scan_line(token.value)
        assert detector.beat_compares == 1 + 16

    def test_counters(self):
        detector, token = make_detector(64)
        detector.scan_line(token.value)
        detector.scan_line(b"\x00" * 64)
        assert detector.fills_checked == 2
        assert detector.matches_found == 1


class TestSlotGeometry:
    def test_slot_of(self):
        detector, _ = make_detector(16)
        assert detector.slot_of(0x1000) == 0
        assert detector.slot_of(0x1010) == 1
        assert detector.slot_of(0x102F) == 2
        assert detector.slot_of(0x1030) == 3

    def test_slots_touched_single(self):
        detector, _ = make_detector(16)
        assert detector.slots_touched(0x1000, 4) == [0]
        assert detector.slots_touched(0x103C, 4) == [3]

    def test_slots_touched_spanning(self):
        detector, _ = make_detector(16)
        assert detector.slots_touched(0x100E, 4) == [0, 1]
        assert detector.slots_touched(0x1000, 64) == [0, 1, 2, 3]

    def test_slots_touched_rejects_empty(self):
        detector, _ = make_detector(64)
        with pytest.raises(ValueError):
            detector.slots_touched(0, 0)

    def test_token_line_image(self):
        detector, token = make_detector(32)
        image = detector.token_line_image()
        assert image == token.value * 2
        assert detector.scan_line(image) == 0b11


class TestCriticalWordMatch:
    def test_partial_match_detected(self):
        detector, token = make_detector(64)
        word = token.value[8:16]
        assert detector.critical_word_partial_match(word, 8)

    def test_partial_mismatch(self):
        detector, _ = make_detector(64)
        assert not detector.critical_word_partial_match(b"\x01" * 8, 8)

    def test_partial_match_in_second_slot(self):
        detector, token = make_detector(32)
        word = token.value[0:8]
        assert detector.critical_word_partial_match(word, 32)


class TestDetectorProperties:
    @given(st.binary(min_size=64, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_random_data_never_matches(self, data):
        """2^-512 false-positive bound: random data never matches."""
        detector, token = make_detector(64)
        expected = 0b1 if data == token.value else 0
        assert detector.scan_line(data) == expected

    @given(st.integers(min_value=0, max_value=3))
    def test_single_slot_detection(self, slot):
        detector, token = make_detector(16)
        line = bytearray(64)
        line[slot * 16 : (slot + 1) * 16] = token.value
        assert detector.scan_line(bytes(line)) == (1 << slot)

    def test_line_size_must_be_multiple_of_width(self):
        reg = TokenConfigRegister(Token.random(64, seed=1))
        with pytest.raises(ValueError):
            TokenDetector(reg, line_size=32)
