"""Integration tests for the experiment harness."""

import pytest

from repro.core.modes import Mode
from repro.harness.configs import (
    DefenseSpec,
    SimulationConfig,
    figure7_specs,
    figure8_specs,
    table2_text,
)
from repro.harness.experiment import build_defense, run_benchmark, run_suite
from repro.harness.reporting import bar_chart, format_table, overhead_matrix
from repro.runtime.machine import ExecutionMode, Machine
from repro.workloads.spec import profile_by_name

QUICK = SimulationConfig(scale=0.05)


class TestSpecs:
    def test_figure7_specs_cover_paper_legend(self):
        names = {s.name for s in figure7_specs()}
        assert names == {
            "ASan",
            "Debug Full",
            "Secure Full",
            "PerfectHW Full",
            "Debug Heap",
            "Secure Heap",
            "PerfectHW Heap",
        }

    def test_figure8_specs(self):
        names = {s.name for s in figure8_specs()}
        assert names == {
            f"{w} {scope}" for w in (16, 32, 64) for scope in ("Full", "Heap")
        }

    def test_build_defense_kinds(self):
        machine = Machine(mode=ExecutionMode.TRACE)
        assert build_defense(machine, DefenseSpec.plain()).describe() == "plain"
        assert build_defense(machine, DefenseSpec.asan()).describe() == "asan"
        assert (
            build_defense(machine, DefenseSpec.rest("x")).describe() == "rest"
        )
        with pytest.raises(ValueError):
            build_defense(machine, DefenseSpec(name="?", defense="mpx"))

    def test_table2_text(self):
        text = table2_text()
        assert "2 GHz" in text and "DDR3" in text


class TestRunBenchmark:
    def test_run_produces_cycles_and_stats(self):
        result = run_benchmark(
            profile_by_name("sjeng"), DefenseSpec.plain(), QUICK
        )
        assert result.cycles > 0
        assert result.instructions > 0
        assert result.app_instructions > 0
        assert 0 <= result.l1d_miss_rate <= 1

    def test_rest_run_arms_hardware(self):
        result = run_benchmark(
            profile_by_name("xalancbmk"), DefenseSpec.rest("Secure Full"), QUICK
        )
        assert result.hierarchy_stats.arms > 0

    def test_instruction_expansion_ordering(self):
        """ASan inflates the dynamic instruction count far more than
        REST does — that is the whole point of the paper."""
        profile = profile_by_name("xalancbmk")
        plain = run_benchmark(profile, DefenseSpec.plain(), QUICK)
        asan = run_benchmark(profile, DefenseSpec.asan(), QUICK)
        rest = run_benchmark(profile, DefenseSpec.rest("Secure Full"), QUICK)
        assert plain.instruction_expansion < rest.instruction_expansion
        assert rest.instruction_expansion < asan.instruction_expansion
        # ASan's expansion dwarfs REST's extra-over-plain work.
        rest_extra = rest.instruction_expansion - plain.instruction_expansion
        asan_extra = asan.instruction_expansion - plain.instruction_expansion
        assert asan_extra > 5 * rest_extra

    def test_same_seed_reproducible(self):
        profile = profile_by_name("gobmk")
        a = run_benchmark(profile, DefenseSpec.plain(), QUICK)
        b = run_benchmark(profile, DefenseSpec.plain(), QUICK)
        assert a.cycles == b.cycles

    def test_debug_mode_slower_than_secure(self):
        profile = profile_by_name("hmmer")
        secure = run_benchmark(profile, DefenseSpec.rest("s"), QUICK)
        debug = run_benchmark(
            profile, DefenseSpec.rest("d", mode=Mode.DEBUG), QUICK
        )
        assert debug.cycles > secure.cycles


class TestRunSuite:
    def test_plain_baseline_added(self):
        results = run_suite(
            [profile_by_name("sjeng")], [DefenseSpec.rest("Secure Full")], QUICK
        )
        assert "Plain" in results["sjeng"]
        assert "Secure Full" in results["sjeng"]

    def test_progress_callback(self):
        seen = []
        run_suite(
            [profile_by_name("sjeng")],
            [DefenseSpec.rest("Secure Full")],
            QUICK,
            progress=seen.append,
        )
        assert any("sjeng" in line for line in seen)


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_bar_chart_clamps(self):
        text = bar_chart({"g": {"x": 500.0, "y": 10.0}}, clamp=100.0)
        assert "off scale" in text

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart({"g": {}})

    def test_overhead_matrix(self):
        results = run_suite(
            [profile_by_name("sjeng")], [DefenseSpec.rest("Secure Full")], QUICK
        )
        matrix = overhead_matrix(results, ["Secure Full"])
        assert "sjeng" in matrix
        assert isinstance(matrix["sjeng"]["Secure Full"], float)
