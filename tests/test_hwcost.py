"""Tests for the hardware cost accounting (the 1-bit-1-comparator claim)."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import HierarchyConfig
from repro.core.hwcost import comparison_table, rest_cost


class TestRestCost:
    def test_table2_config_one_bit_per_line(self):
        cost = rest_cost()
        # 64 KB / 64 B = 1024 lines, one token bit each for 64B tokens.
        assert cost.l1d_lines == 1024
        assert cost.token_bits_per_line == 1
        assert cost.total_metadata_bits == 1024
        assert cost.metadata_bytes == 128  # 128 bytes of SRAM, total

    def test_storage_overhead_is_negligible(self):
        cost = rest_cost()
        # 1 bit per 512-bit line: under 0.2% of the data array.
        assert cost.storage_overhead_fraction < 0.002

    def test_narrow_tokens_scale_bits(self):
        """Paper §III-B: 2 and 4 bits per line for 32B/16B tokens."""
        assert rest_cost(token_width=32).token_bits_per_line == 2
        assert rest_cost(token_width=16).token_bits_per_line == 4

    def test_single_beat_comparator(self):
        cost = rest_cost()
        assert cost.comparators == 1
        assert cost.comparator_width_bits == 32

    def test_token_register_width(self):
        assert rest_cost(token_width=64).token_register_bits == 512
        assert rest_cost(token_width=16).token_register_bits == 128

    def test_custom_cache_geometry(self):
        config = HierarchyConfig(
            l1d=CacheConfig(name="L1-D", size=32 * 1024, associativity=8)
        )
        assert rest_cost(config).l1d_lines == 512

    def test_comparison_table_has_rest_first(self):
        rows = comparison_table()
        assert rows[0][0] == "REST"
        assert "1024 bits" in rows[0][1]
        schemes = {row[0] for row in rows}
        assert {"HDFI", "CHERI", "Watchdog"} <= schemes
