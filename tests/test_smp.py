"""Tests for cycle-interleaved multicore execution with REST."""

import pytest

from repro.core import Mode, RestException, Token, TokenConfigRegister
from repro.cpu.isa import alu, arm_op, disarm_op, load, store
from repro.cpu.smp import SmpSystem


def compute_trace(n=200):
    return [alu() for _ in range(n)]


class TestSmpExecution:
    def test_two_cores_run_to_completion(self):
        smp = SmpSystem(cores=2)
        stats = smp.run([compute_trace(300), compute_trace(500)])
        assert stats[0].committed == 300
        assert stats[1].committed == 500

    def test_wrong_trace_count_rejected(self):
        smp = SmpSystem(cores=2)
        with pytest.raises(ValueError):
            smp.run([compute_trace()])

    def test_cores_progress_concurrently(self):
        """Equal traces finish in (nearly) equal cycle counts — the
        system is not serialising one core after the other.  (A modest
        asymmetry remains: the first core warms the shared L2's
        instruction lines, so the second core's cold L1-I misses are
        cheaper.)"""
        smp = SmpSystem(cores=2)
        stats = smp.run([compute_trace(1000), compute_trace(1000)])
        assert abs(stats[0].cycles - stats[1].cycles) < 250
        # Definitely not serialised: total wall-clock is far below the
        # sum of two independent runs.
        assert max(s.cycles for s in stats) < sum(s.cycles for s in stats)

    def test_disjoint_memory_traces(self):
        smp = SmpSystem(cores=2)
        t0 = [store(0x10000 + 64 * i, 8) for i in range(50)]
        t1 = [store(0x80000 + 64 * i, 8) for i in range(50)]
        stats = smp.run([t0, t1])
        assert stats[0].committed == 50 and stats[1].committed == 50

    def test_shared_line_coherence_traffic(self):
        smp = SmpSystem(cores=2)
        t0 = [store(0x10000, 8) for _ in range(30)]
        t1 = [load(0x10000, 8) for _ in range(30)]
        smp.run([t0, t1])
        assert smp.memory.stats.invalidations + smp.memory.stats.downgrades > 0


class TestSmpRestSemantics:
    def test_cross_core_token_fault_under_timing(self):
        """Core 0 arms; core 1's later load faults — through the full
        pipeline + coherence stack, not just the functional layer."""
        smp = SmpSystem(cores=2)
        t0 = [arm_op(0x40000)] + [alu() for _ in range(400)]
        # Pad core 1 so its load issues well after core 0's arm commits.
        t1 = [alu() for _ in range(300)] + [load(0x40000, 8)]
        with pytest.raises(RestException):
            smp.run([t0, t1])

    def test_arm_disarm_handoff_between_cores(self):
        """Core 0 arms and disarms; core 1 then accesses freely.

        Core 1's load must issue after core 0's disarm completes; the
        padding covers core 0's cold instruction-fetch stall (~200
        cycles to DRAM) plus its pipeline latency."""
        smp = SmpSystem(cores=2)
        t0 = [arm_op(0x40000), disarm_op(0x40000)]
        t1 = [alu() for _ in range(5000)] + [load(0x40000, 8)]
        stats = smp.run([t0, t1])
        assert stats[1].committed == 5001

    def test_debug_mode_system_wide(self):
        register = TokenConfigRegister(
            Token.random(64, seed=5), mode=Mode.DEBUG
        )
        smp = SmpSystem(cores=2, token_config=register)
        t0 = [arm_op(0x40000)] + [alu() for _ in range(200)]
        t1 = [alu() for _ in range(300)] + [load(0x40000, 8)]
        with pytest.raises(RestException) as info:
            smp.run([t0, t1])
        assert info.value.precise  # debug mode everywhere

    def test_four_core_scaling(self):
        smp = SmpSystem(cores=4)
        stats = smp.run([compute_trace(200) for _ in range(4)])
        assert all(s.committed == 200 for s in stats)
