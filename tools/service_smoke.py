#!/usr/bin/env python
"""CI smoke test for the simulation job service.

Boots a real daemon as a subprocess, runs the same scaled-down
``run_all`` three ways — directly (no service), and from two concurrent
service clients — and asserts the service's core contracts:

* **Identity**: every service job's manifest equals the direct run's
  after ``strip_volatile``, and the artifact files are byte-identical.
* **Single-flight dedup**: the two concurrent jobs together execute
  each unique unit exactly once (`executions == unique units`); the
  loser of each race attaches as `shared`/`cached`.
* **Warm cache**: a third submission after completion executes nothing.
* **Clean shutdown**: the daemon drains on `shutdown` and exits 0.

Exit code 0 is the pass signal; the daemon log is left in the state
dir for artifact upload.
"""

import argparse
import json
import subprocess
import sys
import threading
from pathlib import Path

from repro.experiments.run_all import run_all
from repro.harness.parallel import strip_volatile
from repro.service import ServiceClient, wait_for_daemon


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--state-dir", default="/tmp/service-smoke")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=99)
    parser.add_argument(
        "--names", nargs="+", default=["table1", "table2"]
    )
    args = parser.parse_args(argv)

    state = Path(args.state_dir)
    state.mkdir(parents=True, exist_ok=True)
    socket_path = str(state / "daemon.sock")

    direct = state / "direct-run"
    run_all(
        str(direct), scale=args.scale, seed=args.seed, jobs=1,
        use_cache=False, quiet=True, names=list(args.names),
    )
    direct_manifest = strip_volatile(
        json.loads((direct / "manifest.json").read_text())
    )

    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state), "--slots", "2"]
    )
    try:
        wait_for_daemon(socket_path=socket_path, timeout=30)
        params = {
            "names": list(args.names),
            "scale": args.scale,
            "seed": args.seed,
        }

        finals = [None, None]
        errors = []

        def submit_and_wait(slot):
            try:
                with ServiceClient(socket_path=socket_path) as client:
                    job = client.submit(
                        "run_all",
                        {**params, "outdir": str(state / f"client-{slot}")},
                    )
                    finals[slot] = client.wait(job["id"])
            except Exception as error:  # noqa: BLE001 — reported below
                errors.append(error)

        threads = [
            threading.Thread(target=submit_and_wait, args=(slot,))
            for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        check(not errors, f"both clients completed without error {errors}")
        check(
            all(final and final["state"] == "done" for final in finals),
            "both concurrent jobs reached state=done",
        )

        unique_units = finals[0]["units"]["total"]
        for slot, final in enumerate(finals):
            outdir = Path(final["outdir"])
            manifest = strip_volatile(
                json.loads((outdir / "manifest.json").read_text())
            )
            check(
                manifest == direct_manifest,
                f"client-{slot} manifest strip_volatile-identical to direct",
            )
            for name in args.names:
                check(
                    (outdir / f"{name}.txt").read_bytes()
                    == (direct / f"{name}.txt").read_bytes(),
                    f"client-{slot} artifact {name}.txt byte-identical",
                )

        executed = sum(final["executed"] for final in finals)
        deduped = sum(final["dedup_hits"] for final in finals)
        cached = sum(
            final["units"].get("cached", 0) for final in finals
        )
        check(
            executed == unique_units,
            f"one execution per unique unit ({executed}/{unique_units}, "
            f"{deduped} shared in-flight, {cached} from cache)",
        )
        check(
            deduped + cached == unique_units,
            "second client fully served by dedup + cache",
        )

        with ServiceClient(socket_path=socket_path) as client:
            stats = client.ping()["stats"]
            check(
                stats["executions"] == unique_units,
                f"daemon-wide executions counter is {unique_units}",
            )
            third = client.submit(
                "run_all", {**params, "outdir": str(state / "client-2")}
            )
            final3 = client.wait(third["id"])
            check(
                final3["state"] == "done" and final3["executed"] == 0,
                "warm resubmission executed nothing",
            )
            client.shutdown()
        daemon.wait(timeout=60)
        check(daemon.returncode == 0, "daemon drained and exited 0")
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()
    print("service smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
