#!/usr/bin/env python
"""Regenerate the committed security-matrix goldens.

    PYTHONPATH=src python tools/foundry_golden.py

Rewrites:

* ``results/attack_matrix_golden.json`` — outcome of every hand-written
  attack (Table III suite) across all canonical defense modes.
* ``results/foundry_matrix_golden.json`` — the CI smoke corpus matrix
  (seed 7, 120 cases, default defense axes).

Commit the diff only when an outcome change is *intended* — these files
are the regression lock for the security evaluation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.foundry.matrix import handwritten_matrix, matrix_to_json  # noqa: E402
from repro.foundry.runner import run_foundry  # noqa: E402

#: CI smoke-corpus coordinates — keep in sync with the foundry-smoke
#: job in .github/workflows/ci.yml and tests/test_attack_matrix_golden.py.
SMOKE_SEED = 7
SMOKE_CASES = 120

RESULTS = Path(__file__).resolve().parent.parent / "results"


def main() -> int:
    attack_path = RESULTS / "attack_matrix_golden.json"
    attack_path.write_text(
        json.dumps(handwritten_matrix(), indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {attack_path}")

    matrix = run_foundry(SMOKE_SEED, SMOKE_CASES, jobs=2)
    foundry_path = RESULTS / "foundry_matrix_golden.json"
    foundry_path.write_text(matrix_to_json(matrix))
    print(
        f"wrote {foundry_path} "
        f"(digest {matrix['corpus_digest'][:12]}, "
        f"{len(matrix['mispredictions'])} mispredictions)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
